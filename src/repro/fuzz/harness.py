"""The differential fuzzing loop: generate, optimize, cross-check, shrink.

One iteration draws a random netlist (:mod:`repro.fuzz.generator`) and one
point of the flow's option matrix (:mod:`repro.fuzz.options`), runs the
full BDS flow (plus an optional technology-mapping stage) and cross-checks
the result against the input network with the strongest verifier
available (``verify_networks(mode="full")`` -- BDD CEC with a simulation
cross-check; exhaustive simulation below 13 inputs).  Any disagreement or
flow exception is a *failure*; the failing input is then delta-debugged
(:mod:`repro.fuzz.shrink`) down to a minimal netlist that still fails
under the same options, and saved to the corpus
(:mod:`repro.fuzz.corpus`) for permanent replay.

``run_fuzz`` is deterministic for a given ``seed`` (including with
``jobs > 1``: cases are sampled in the parent and fanned out in waves).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.bdd.manager import BddBudgetExceeded
from repro.bds.flow import BDSOptions, bds_optimize
from repro.check import CheckError
from repro.fuzz.corpus import CorpusEntry, save_entry
from repro.fuzz.generator import sample_spec, spec_from_dict
from repro.fuzz.options import options_from_dict, options_to_dict, sample_options
from repro.fuzz.shrink import shrink_network
from repro.network.blif import write_blif
from repro.network.network import Network
from repro.verify import VerifyError, verify_networks

#: Default BDD cap for the differential cross-check -- far above anything a
#: tier-sized random circuit produces, so "unknown" effectively never
#: happens during fuzzing and every iteration is a real verdict.
CROSS_CHECK_CAP = 50000


@dataclass
class Failure:
    """What went wrong on one fuzz case."""

    kind: str                                   # "mismatch" | "crash"
    stage: str                                  # "flow" | "map"
    detail: str
    failing_output: Optional[str] = None
    counterexample: Optional[Dict[str, bool]] = None


@dataclass
class FailureRecord:
    """One corpus-worthy find, as reported by :func:`run_fuzz`."""

    failure: Failure
    spec: Dict[str, Any]
    options: Dict[str, Any]
    map_mode: Optional[str]
    original_nodes: int
    shrunk_nodes: int
    blif: str
    corpus_path: Optional[str] = None


@dataclass
class FuzzReport:
    """Summary of one fuzzing run."""

    seed: int
    budget_seconds: float
    jobs: int
    iterations: int = 0
    elapsed: float = 0.0
    failures: List[FailureRecord] = field(default_factory=list)

    def summary(self) -> str:
        return ("fuzz: seed=%d iterations=%d failures=%d elapsed=%.1fs"
                % (self.seed, self.iterations, len(self.failures),
                   self.elapsed))


def run_case(net: Network, options: BDSOptions,
             map_mode: Optional[str] = None,
             size_cap: int = CROSS_CHECK_CAP,
             seed: int = 1355, check_cache: bool = False) -> Optional[Failure]:
    """Run the flow (and optional mapping) on ``net``; None when clean.

    ``check_cache`` additionally runs the case twice through a throwaway
    artifact cache (cold store, then warm hit) and requires the cached
    result to agree byte-for-byte with the cold run -- the differential
    guard for the ``repro.service`` cache path.
    """
    try:
        result = bds_optimize(net, options)
    except (CheckError, VerifyError) as exc:
        # Invariant violations and in-flow verification mismatches are
        # first-class finds, not generic crashes to be summarized away.
        return Failure("crash", "flow",
                       "%s: %s" % (type(exc).__name__, exc))
    except BddBudgetExceeded:
        # A resource verdict, not a bug: the harness never arms budgets
        # itself, so one here belongs to the caller (scheduler timeout).
        raise
    except Exception as exc:
        return Failure("crash", "flow",
                       "%s: %s" % (type(exc).__name__, exc))
    failure = _cross_check(net, result.network, "flow", size_cap, seed)
    if failure is None and check_cache:
        failure = _cache_differential(net, options)
    if failure is not None or not map_mode:
        return failure
    try:
        mapped = _map_stage(result.network, map_mode)
    except (CheckError, VerifyError) as exc:
        return Failure("crash", "map",
                       "%s: %s" % (type(exc).__name__, exc))
    except BddBudgetExceeded:
        raise
    except Exception as exc:
        return Failure("crash", "map",
                       "%s: %s" % (type(exc).__name__, exc))
    return _cross_check(net, mapped, "map", size_cap, seed)


def shrink_failure(net: Network, options: BDSOptions,
                   map_mode: Optional[str], failure: Failure,
                   max_checks: int = 300,
                   deadline: Optional[float] = None) -> Network:
    """Delta-debug ``net`` to a minimal input still failing the same way."""
    check_cache = failure.stage == "cache"

    def fails(candidate: Network) -> bool:
        got = run_case(candidate, options, map_mode,
                       check_cache=check_cache)
        return (got is not None and got.kind == failure.kind
                and got.stage == failure.stage)

    return shrink_network(net, fails, max_checks=max_checks,
                          deadline=deadline)


def replay_entry(entry: CorpusEntry) -> Optional[Failure]:
    """Re-run one corpus entry; None means the old failure stays fixed."""
    return run_case(entry.network, entry.options, entry.map_mode)


def run_fuzz(budget_seconds: float = 60.0, seed: int = 0, jobs: int = 1,
             corpus_dir: Optional[str] = None, max_failures: int = 10,
             shrink_checks: int = 300, shrink_seconds: float = 120.0,
             log: Optional[Callable[[str], None]] = None) -> FuzzReport:
    """Fuzz until the time budget or failure cap is hit.

    New failures are shrunk and (when ``corpus_dir`` is given) written to
    the corpus.  ``jobs > 1`` fans whole cases -- including their shrink
    phase -- out over a process pool in deterministic waves.
    """
    import random

    rng = random.Random(seed)
    report = FuzzReport(seed=seed, budget_seconds=budget_seconds, jobs=jobs)
    start = time.monotonic()
    deadline = start + budget_seconds

    def emit(msg: str) -> None:
        if log is not None:
            log(msg)

    def absorb(raw: Optional[Dict[str, Any]]) -> None:
        report.iterations += 1
        if raw is None:
            return
        record = _record_from_raw(raw)
        if corpus_dir is not None:
            record.corpus_path = save_entry(
                corpus_dir, record.blif,
                _corpus_meta(record, seed))
        report.failures.append(record)
        emit("FAILURE #%d: %s/%s %s (%d -> %d nodes)%s"
             % (len(report.failures), record.failure.kind,
                record.failure.stage, record.failure.detail,
                record.original_nodes, record.shrunk_nodes,
                " -> %s" % record.corpus_path if record.corpus_path else ""))

    emit("fuzz: seed=%d budget=%.0fs jobs=%d" % (seed, budget_seconds, jobs))
    if jobs <= 1:
        while (time.monotonic() < deadline
               and len(report.failures) < max_failures):
            absorb(_fuzz_one(_sample_payload(rng, shrink_checks,
                                             shrink_seconds)))
    else:
        from concurrent.futures import ProcessPoolExecutor

        with ProcessPoolExecutor(max_workers=jobs) as pool:
            while (time.monotonic() < deadline
                   and len(report.failures) < max_failures):
                wave = [_sample_payload(rng, shrink_checks, shrink_seconds)
                        for _ in range(jobs)]
                for raw in pool.map(_fuzz_one, wave):
                    absorb(raw)
    report.elapsed = time.monotonic() - start
    emit(report.summary())
    return report


# ----------------------------------------------------------------------
# Internals (module-level so the process pool can pickle them)
# ----------------------------------------------------------------------


def _sample_payload(rng: "Any", shrink_checks: int,
                    shrink_seconds: float) -> Tuple[Dict[str, Any],
                                                    Dict[str, Any],
                                                    Optional[str], int, float,
                                                    bool]:
    spec = sample_spec(rng)
    options, map_mode = sample_options(rng)
    # ~1 in 8 cases also cross the artifact-cache path (cold vs warm).
    check_cache = rng.random() < 0.125
    return (spec.as_dict(), options_to_dict(options), map_mode,
            shrink_checks, shrink_seconds, check_cache)


def _fuzz_one(payload: Tuple[Dict[str, Any], Dict[str, Any], Optional[str],
                             int, float, bool]) -> Optional[Dict[str, Any]]:
    """One full iteration: build, run, and on failure shrink + serialize."""
    spec_d, opts_d, map_mode, shrink_checks, shrink_seconds, check_cache = \
        payload
    spec = spec_from_dict(spec_d)
    options = options_from_dict(opts_d)
    net = spec.build()
    failure = run_case(net, options, map_mode, check_cache=check_cache)
    if failure is None:
        return None
    shrunk = shrink_failure(net, options, map_mode, failure,
                            max_checks=shrink_checks,
                            deadline=time.monotonic() + shrink_seconds)
    # Re-derive the failure facts on the minimized netlist (the failing
    # output / counterexample usually change as the circuit shrinks).
    final = run_case(shrunk, options, map_mode,
                     check_cache=check_cache) or failure
    return {
        "spec": spec_d, "options": opts_d, "map_mode": map_mode,
        "kind": final.kind, "stage": final.stage, "detail": final.detail,
        "failing_output": final.failing_output,
        "counterexample": final.counterexample,
        "original_nodes": net.node_count(),
        "shrunk_nodes": shrunk.node_count(),
        "blif": write_blif(shrunk),
    }


def _record_from_raw(raw: Dict[str, Any]) -> FailureRecord:
    failure = Failure(raw["kind"], raw["stage"], raw["detail"],
                      raw.get("failing_output"), raw.get("counterexample"))
    return FailureRecord(failure=failure, spec=raw["spec"],
                         options=raw["options"], map_mode=raw["map_mode"],
                         original_nodes=raw["original_nodes"],
                         shrunk_nodes=raw["shrunk_nodes"], blif=raw["blif"])


def _corpus_meta(record: FailureRecord, seed: int) -> Dict[str, Any]:
    return {
        "kind": record.failure.kind,
        "stage": record.failure.stage,
        "detail": record.failure.detail,
        "failing_output": record.failure.failing_output,
        "counterexample": record.failure.counterexample,
        "seed": seed,
        "spec": record.spec,
        "options": record.options,
        "map_mode": record.map_mode,
    }


def _cache_differential(net: Network,
                        options: BDSOptions) -> Optional[Failure]:
    """Cold-store then warm-hit the case in a throwaway cache; the cached
    network must be byte-identical to the cold run's."""
    import tempfile

    from repro.service.cache import ArtifactCache

    with tempfile.TemporaryDirectory() as td:
        cache = ArtifactCache(td)
        try:
            cold = bds_optimize(net, options, cache=cache)
            warm = bds_optimize(net, options, cache=cache)
        except (CheckError, VerifyError) as exc:
            return Failure("crash", "cache",
                           "%s: %s" % (type(exc).__name__, exc))
        except BddBudgetExceeded:
            raise
        except Exception as exc:
            return Failure("crash", "cache",
                           "%s: %s" % (type(exc).__name__, exc))
        if warm.perf.get("artifact_cache_hits", 0) != 1:
            return Failure("mismatch", "cache",
                           "warm run missed the cache (counters %r)"
                           % {k: v for k, v in warm.perf.items()
                              if k.startswith("artifact_cache_")})
        if write_blif(cold.network) != write_blif(warm.network):
            return Failure("mismatch", "cache",
                           "cached network differs from cold run")
    return None


def _cross_check(spec: Network, impl: Network, stage: str, size_cap: int,
                 seed: int) -> Optional[Failure]:
    try:
        outcome = verify_networks(spec, impl, mode="full",
                                  size_cap=size_cap, seed=seed)
    except ValueError as exc:
        # Input/output sets changed: a structural miscompile.
        return Failure("mismatch", stage, "interface: %s" % exc)
    if outcome.equivalent:
        return None
    return Failure("mismatch", stage,
                   "output %r differs" % outcome.failing_output,
                   outcome.failing_output, outcome.counterexample)


def _map_stage(net: Network, map_mode: str) -> Network:
    if map_mode.startswith("lut"):
        from repro.mapping.lut import map_luts

        return map_luts(net, k=int(map_mode[3:])).network
    from repro.mapping import map_network

    return map_network(net, mode=map_mode).network
