"""``repro.fuzz``: differential fuzzing of the BDS flow.

BDS validates every synthesis result against the original network
(Section V); this package turns that check into *automated correctness
pressure*.  Random netlists (:mod:`repro.fuzz.generator`) are pushed
through the full flow under randomly sampled option matrices
(:mod:`repro.fuzz.options`), each result is cross-checked against its
input with the strongest verifier available, and every disagreement is
delta-debugged (:mod:`repro.fuzz.shrink`) to a minimal replayable BLIF in
``tests/corpus/`` (:mod:`repro.fuzz.corpus`), which the corpus regression
test re-runs forever after.

Entry points: :func:`run_fuzz` (the time-boxed loop, also exposed as the
``repro fuzz`` CLI subcommand), :func:`run_case` (one differential check),
:func:`shrink_network` (generic ddmin on netlists), and the corpus
load/save/replay helpers.  See ``docs/VERIFICATION.md``.
"""

from repro.fuzz.corpus import (
    CorpusEntry,
    load_entries,
    load_entry,
    save_entry,
)
from repro.fuzz.generator import NetSpec, sample_spec, spec_from_dict
from repro.fuzz.harness import (
    Failure,
    FailureRecord,
    FuzzReport,
    replay_entry,
    run_case,
    run_fuzz,
    shrink_failure,
)
from repro.fuzz.options import (
    MAP_MODES,
    options_from_dict,
    options_to_dict,
    sample_options,
)
from repro.fuzz.shrink import shrink_network

__all__ = [
    "CorpusEntry",
    "Failure",
    "FailureRecord",
    "FuzzReport",
    "MAP_MODES",
    "NetSpec",
    "load_entries",
    "load_entry",
    "options_from_dict",
    "options_to_dict",
    "replay_entry",
    "run_case",
    "run_fuzz",
    "sample_options",
    "sample_spec",
    "save_entry",
    "shrink_failure",
    "shrink_network",
    "spec_from_dict",
]
