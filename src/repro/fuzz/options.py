"""Option-matrix sampling for the differential fuzzer.

The fuzzer's job is to cross the *whole* configuration space of the flow
against random circuits: parallel decomposition, sanitizer levels,
reordering on/off, eliminate thresholds, every decomposition family
switch, and the post-flow technology mapping (area- vs delay-mode cell
mapping, K-LUT covering).  ``sample_options`` draws one point of that
matrix; ``options_to_dict`` / ``options_from_dict`` give a stable JSON
shape so a corpus entry replays with the exact options that failed.
"""

from __future__ import annotations

import random
from typing import Any, Dict, Optional, Tuple

from repro.bds.flow import BDSOptions
from repro.decomp.engine import DecompOptions

#: Post-flow mapping stage choices; None skips mapping.
MAP_MODES = (None, "area", "delay", "lut3", "lut4", "lut5")


def sample_options(rng: random.Random) -> Tuple[BDSOptions, Optional[str]]:
    """One point of the flow's option matrix: ``(BDSOptions, map_mode)``.

    Expensive settings (worker pools, the full sanitizer, SDC
    minimization) appear with low probability so throughput stays high
    while every combination still gets coverage over a long run.
    """
    decomp = DecompOptions(
        enable_simple=rng.random() < 0.95,
        enable_x_dominator=rng.random() < 0.85,
        enable_mux=rng.random() < 0.85,
        enable_generalized=rng.random() < 0.85,
        enable_bool_xnor=rng.random() < 0.85,
        verify=rng.random() < 0.25,
        min_gain=rng.choice([1.0, 1.0, 1.0, 1.15]),
        xnor_slack=rng.choice([0, 2, 2, 4]),
    )
    opts = BDSOptions(
        eliminate_threshold=rng.choice([-2, 0, 0, 0, 2, 5]),
        eliminate_size_cap=rng.choice([60, 250, 1000, 1000]),
        use_bdd_mapping=rng.random() < 0.7,
        reorder=rng.random() < 0.8,
        sift_size_limit=rng.choice([50, 20000, 20000]),
        # Small thresholds on purpose: fuzz circuits are tiny, so only a
        # low trigger ever exercises the dynamic-reorder safe points.
        autoreorder=rng.choice([0, 0, 0, 200, 500, 1000]),
        autoreorder_method=rng.choice(["sift", "sift", "window3"]),
        decomp=decomp,
        sharing=rng.random() < 0.85,
        final_sweep=rng.random() < 0.9,
        sweep_merge_equivalent=rng.random() < 0.8,
        balance_trees=rng.random() < 0.3,
        use_sdc=rng.random() < 0.1,
        jobs=2 if rng.random() < 0.08 else 1,
        check_level=rng.choice(["off", "off", "off", "off", "cheap", "full"]),
        verify="off",  # the fuzzer cross-checks differentially itself
    )
    map_mode = rng.choice(MAP_MODES)
    return opts, map_mode


def options_to_dict(opts: BDSOptions) -> Dict[str, Any]:
    """JSON-able snapshot of a :class:`BDSOptions` (nested decomp inline).

    Thin alias for :meth:`BDSOptions.to_dict`, kept so corpus metadata
    written before the canonical serialization moved onto the dataclass
    keeps loading through the same entry point.
    """
    return opts.to_dict()


def options_from_dict(data: Dict[str, Any]) -> BDSOptions:
    """Rebuild options from :func:`options_to_dict` output.

    Unknown keys are ignored and missing keys take their defaults, so a
    corpus recorded by an older or newer revision still replays (see
    :meth:`BDSOptions.from_dict`).
    """
    return BDSOptions.from_dict(data)
