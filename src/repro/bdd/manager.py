"""The BDD manager: node storage, unique table, ITE, derived operators.

A reference (``ref``) is an int ``node_index << 1 | complement``.  Node 0 is
the single terminal node; ``ONE == 0`` (terminal, regular) and ``ZERO == 1``
(terminal, complemented).  To keep the representation canonical the *then*
(high) edge of a stored node is never complemented; ``mk`` re-normalizes and
returns a complemented ref when needed.

Variables are small ints handed out by :meth:`BDD.new_var`.  The manager
keeps a ``var -> level`` permutation so the sifting reorderer can move
variables without touching callers' variable ids.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

#: Sentinel level/var for the terminal node; larger than any real level.
TERMINAL = 1 << 30

#: The constant TRUE function (terminal node, regular edge).
ONE = 0

#: The constant FALSE function (terminal node, complement edge).
ZERO = 1


class BDD:
    """A manager for reduced, ordered BDDs with complement edges."""

    def __init__(self) -> None:
        # Parallel node arrays.  Node 0 is the terminal.
        self._var: List[int] = [TERMINAL]
        self._lo: List[int] = [ONE]
        self._hi: List[int] = [ONE]
        # Unique table: (var, lo, hi) -> node index.
        self._unique: Dict[Tuple[int, int, int], int] = {}
        # Computed table for ITE and other cached operators.
        self._cache: Dict[Tuple, int] = {}
        # Variable bookkeeping.
        self._var_names: List[str] = []
        self._name_to_var: Dict[str, int] = {}
        self._var2level: List[int] = []
        self._level2var: List[int] = []
        # Nodes indexed by variable (lists may contain stale entries after
        # in-place reordering; consumers must re-check ``self._var``).
        self._nodes_by_var: Dict[int, List[int]] = {}

    # ------------------------------------------------------------------
    # Variables and ordering
    # ------------------------------------------------------------------

    def new_var(self, name: Optional[str] = None) -> int:
        """Create a fresh variable at the bottom of the order; return its id."""
        var = len(self._var_names)
        if name is None:
            name = "v%d" % var
        if name in self._name_to_var:
            raise ValueError("duplicate variable name: %r" % name)
        self._var_names.append(name)
        self._name_to_var[name] = var
        self._var2level.append(len(self._level2var))
        self._level2var.append(var)
        self._nodes_by_var[var] = []
        return var

    def add_vars(self, names: Iterable[str]) -> List[int]:
        """Create several named variables; return their ids in order."""
        return [self.new_var(n) for n in names]

    @property
    def num_vars(self) -> int:
        return len(self._var_names)

    def var_name(self, var: int) -> str:
        return self._var_names[var]

    def var_by_name(self, name: str) -> int:
        return self._name_to_var[name]

    def level_of_var(self, var: int) -> int:
        return self._var2level[var]

    def var_at_level(self, level: int) -> int:
        return self._level2var[level]

    def current_order(self) -> List[int]:
        """Variables from top level to bottom level."""
        return list(self._level2var)

    # ------------------------------------------------------------------
    # Structural accessors
    # ------------------------------------------------------------------

    def var_of(self, ref: int) -> int:
        """Variable labelling the top node of ``ref`` (TERMINAL for constants)."""
        return self._var[ref >> 1]

    def level(self, ref: int) -> int:
        """Level of the top node of ``ref`` (TERMINAL for constants)."""
        var = self._var[ref >> 1]
        if var == TERMINAL:
            return TERMINAL
        return self._var2level[var]

    def is_const(self, ref: int) -> bool:
        return ref >> 1 == 0

    def is_var(self, ref: int) -> bool:
        """True if ``ref`` is a plain positive or negative literal."""
        idx = ref >> 1
        if idx == 0:
            return False
        lo, hi = self._lo[idx], self._hi[idx]
        return (lo == ZERO and hi == ONE) or (lo == ONE and hi == ZERO)

    def is_complemented(self, ref: int) -> bool:
        return bool(ref & 1)

    def children(self, ref: int) -> Tuple[int, int]:
        """Phase-corrected (else, then) child refs of ``ref``.

        The returned refs denote the actual cofactor *functions* of ``ref``
        with respect to its top variable, i.e. the complement bit of ``ref``
        is pushed onto the children.  This gives a view of the BDD "without
        complement edges" in which every vertex is a phased ref -- the view
        on which the paper's path/dominator definitions operate.
        """
        idx, phase = ref >> 1, ref & 1
        return self._lo[idx] ^ phase, self._hi[idx] ^ phase

    def node(self, ref: int) -> Tuple[int, int, int]:
        """Raw stored triple (var, lo, hi) of the node under ``ref``."""
        idx = ref >> 1
        return self._var[idx], self._lo[idx], self._hi[idx]

    @property
    def num_nodes_allocated(self) -> int:
        """Total nodes ever allocated (including dead ones)."""
        return len(self._var)

    # ------------------------------------------------------------------
    # Node construction
    # ------------------------------------------------------------------

    def mk(self, var: int, lo: int, hi: int) -> int:
        """Return the canonical ref for ``var ? hi : lo``.

        Applies the reduction rule (``lo == hi``) and the complement-edge
        normalization (stored *then* edges are never complemented).
        """
        if lo == hi:
            return lo
        if hi & 1:
            return self._mk_raw(var, lo ^ 1, hi ^ 1) ^ 1
        return self._mk_raw(var, lo, hi)

    def _mk_raw(self, var: int, lo: int, hi: int) -> int:
        key = (var, lo, hi)
        idx = self._unique.get(key)
        if idx is None:
            idx = len(self._var)
            self._var.append(var)
            self._lo.append(lo)
            self._hi.append(hi)
            self._unique[key] = idx
            self._nodes_by_var[var].append(idx)
        return idx << 1

    def var_ref(self, var: int) -> int:
        """The literal function of variable ``var``."""
        return self.mk(var, ZERO, ONE)

    def literal(self, var: int, positive: bool = True) -> int:
        ref = self.var_ref(var)
        return ref if positive else ref ^ 1

    # ------------------------------------------------------------------
    # ITE and derived operators
    # ------------------------------------------------------------------

    def ite(self, f: int, g: int, h: int) -> int:
        """If-then-else: ``f & g | ~f & h``."""
        # Terminal cases.
        if f == ONE:
            return g
        if f == ZERO:
            return h
        if g == h:
            return g
        if g == ONE and h == ZERO:
            return f
        if g == ZERO and h == ONE:
            return f ^ 1
        # Standard normalizations reduce the cache footprint.
        if g == f:
            g = ONE
        elif g == (f ^ 1):
            g = ZERO
        if h == f:
            h = ZERO
        elif h == (f ^ 1):
            h = ONE
        if g == h:
            return g
        if g == ONE and h == ZERO:
            return f
        if g == ZERO and h == ONE:
            return f ^ 1
        # Symmetry: ite(f,1,h) == ite(h,1,f); ite(f,g,0) == ite(g,f,0);
        # prefer the smaller top level first for a canonical cache key.
        if g == ONE and self.level(h) < self.level(f):
            f, h = h, f
        elif h == ZERO and self.level(g) < self.level(f):
            f, g = g, f
        elif h == ONE and self.level(g) < self.level(f):
            f, g = g ^ 1, f ^ 1
        elif g == ZERO and self.level(h) < self.level(f):
            f, h = h ^ 1, f ^ 1
        # Canonical polarity: first argument regular.
        if f & 1:
            f, g, h = f ^ 1, h, g
        # Output polarity: g regular.
        out_phase = 0
        if g & 1:
            g, h, out_phase = g ^ 1, h ^ 1, 1
        key = (0, f, g, h)
        cached = self._cache.get(key)
        if cached is not None:
            return cached ^ out_phase
        lf, lg, lh = self.level(f), self.level(g), self.level(h)
        top = min(lf, lg, lh)
        var = self._level2var[top]
        f0, f1 = (self.children(f) if lf == top else (f, f))
        g0, g1 = (self.children(g) if lg == top else (g, g))
        h0, h1 = (self.children(h) if lh == top else (h, h))
        r = self.mk(var, self.ite(f0, g0, h0), self.ite(f1, g1, h1))
        self._cache[key] = r
        return r ^ out_phase

    def not_(self, f: int) -> int:
        return f ^ 1

    def and_(self, f: int, g: int) -> int:
        return self.ite(f, g, ZERO)

    def or_(self, f: int, g: int) -> int:
        return self.ite(f, ONE, g)

    def xor_(self, f: int, g: int) -> int:
        return self.ite(f, g ^ 1, g)

    def xnor_(self, f: int, g: int) -> int:
        return self.ite(f, g, g ^ 1)

    def nand_(self, f: int, g: int) -> int:
        return self.and_(f, g) ^ 1

    def nor_(self, f: int, g: int) -> int:
        return self.or_(f, g) ^ 1

    def implies(self, f: int, g: int) -> int:
        return self.ite(f, g, ONE)

    def and_many(self, refs: Sequence[int]) -> int:
        out = ONE
        for r in refs:
            out = self.and_(out, r)
            if out == ZERO:
                return ZERO
        return out

    def or_many(self, refs: Sequence[int]) -> int:
        out = ZERO
        for r in refs:
            out = self.or_(out, r)
            if out == ONE:
                return ONE
        return out

    def xor_many(self, refs: Sequence[int]) -> int:
        out = ZERO
        for r in refs:
            out = self.xor_(out, r)
        return out

    def leq(self, f: int, g: int) -> bool:
        """True iff ``f`` implies ``g`` (ON(f) subset of ON(g))."""
        return self.and_(f, g ^ 1) == ZERO

    # ------------------------------------------------------------------
    # Cofactors, composition, quantification
    # ------------------------------------------------------------------

    def cofactor(self, f: int, var: int, value: bool) -> int:
        """Shannon cofactor of ``f`` with respect to ``var = value``."""
        key = (1, f, var, value)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        lv = self._var2level[var]
        lf = self.level(f)
        if lf > lv:
            r = f
        elif lf == lv:
            lo, hi = self.children(f)
            r = hi if value else lo
        else:
            lo, hi = self.children(f)
            fvar = self.var_of(f)
            r = self.mk(
                fvar,
                self.cofactor(lo, var, value),
                self.cofactor(hi, var, value),
            )
        self._cache[key] = r
        return r

    def cofactor_cube(self, f: int, assignment: Dict[int, bool]) -> int:
        """Cofactor with respect to several variable assignments."""
        out = f
        for var, value in assignment.items():
            out = self.cofactor(out, var, value)
        return out

    def compose(self, f: int, var: int, g: int) -> int:
        """Substitute function ``g`` for variable ``var`` in ``f``."""
        return self._compose(f, var, g, self._var2level[var])

    def _compose(self, f: int, var: int, g: int, lv: int) -> int:
        if self.level(f) > lv:
            return f
        key = (2, f, var, g)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        fvar = self.var_of(f)
        lo, hi = self.children(f)
        if fvar == var:
            r = self.ite(g, hi, lo)
        else:
            r0 = self._compose(lo, var, g, lv)
            r1 = self._compose(hi, var, g, lv)
            # fvar may be above or below var's level relative to substituted
            # functions; rebuild with ITE on the literal to stay canonical.
            r = self.ite(self.var_ref(fvar), r1, r0)
        self._cache[key] = r
        return r

    def vector_compose(self, f: int, subst: Dict[int, int]) -> int:
        """Simultaneously substitute ``subst[var]`` for each variable."""
        if not subst:
            return f
        token = tuple(sorted(subst.items()))
        return self._vector_compose(f, subst, hash(token), token)

    def _vector_compose(self, f: int, subst: Dict[int, int], token_hash: int,
                        token: Tuple) -> int:
        if self.is_const(f):
            return f
        key = (3, f, token_hash, token)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        fvar = self.var_of(f)
        lo, hi = self.children(f)
        r0 = self._vector_compose(lo, subst, token_hash, token)
        r1 = self._vector_compose(hi, subst, token_hash, token)
        g = subst.get(fvar)
        if g is None:
            g = self.var_ref(fvar)
        r = self.ite(g, r1, r0)
        self._cache[key] = r
        return r

    def exists(self, f: int, variables: Iterable[int]) -> int:
        """Existential quantification over ``variables``."""
        levels = frozenset(self._var2level[v] for v in variables)
        if not levels:
            return f
        return self._exists(f, levels, max(levels))

    def _exists(self, f: int, levels: frozenset, max_level: int) -> int:
        lf = self.level(f)
        if lf > max_level:
            return f
        key = (4, f, levels)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        lo, hi = self.children(f)
        r0 = self._exists(lo, levels, max_level)
        r1 = self._exists(hi, levels, max_level)
        if lf in levels:
            r = self.or_(r0, r1)
        else:
            r = self.mk(self.var_of(f), r0, r1)
        self._cache[key] = r
        return r

    def forall(self, f: int, variables: Iterable[int]) -> int:
        return self.exists(f ^ 1, variables) ^ 1

    # ------------------------------------------------------------------
    # Cache management
    # ------------------------------------------------------------------

    def clear_cache(self) -> None:
        """Drop the computed table (unique table is kept)."""
        self._cache.clear()

    def cache_size(self) -> int:
        return len(self._cache)
