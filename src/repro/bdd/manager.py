"""The BDD manager: node storage, unique table, ITE, derived operators.

A reference (``ref``) is an int ``node_index << 1 | complement``.  Node 0 is
the single terminal node; ``ONE == 0`` (terminal, regular) and ``ZERO == 1``
(terminal, complemented).  To keep the representation canonical the *then*
(high) edge of a stored node is never complemented; ``mk`` re-normalizes and
returns a complemented ref when needed.

Variables are small ints handed out by :meth:`BDD.new_var`.  The manager
keeps a ``var -> level`` permutation so the sifting reorderer can move
variables without touching callers' variable ids.

Kernel memory model (see ``docs/PERFORMANCE.md``):

* The computed table is a **bounded, slot-indexed** :class:`ComputedTable`
  (CUDD-style overwrite-on-collision) rather than an unbounded dict, so
  operator caching can never dominate the heap.
* Dead nodes are reclaimed by **mark-and-sweep** (:meth:`BDD.collect_garbage`)
  from externally registered roots; reclaimed slots go on a free list that
  ``mk`` reuses, keeping the node arrays and the unique table compact.
* The ITE hot path is **iterative** (explicit stack) and therefore
  independent of the interpreter recursion limit.
"""

from __future__ import annotations

from typing import (TYPE_CHECKING, Any, Dict, FrozenSet, Iterable, List,
                    Optional, Sequence, Tuple)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (obs -> perf only)
    from repro.obs.trace import Tracer

#: A computed-table key: a small tuple tagged by operation (see the key
#: layouts in ``repro.check.bdd_sanitizer``).  Keys are heterogeneous
#: tuples, so they are typed ``Any`` at the table interface.
CacheKey = Any

#: One computed-table slot: ``(key, result_ref, generation)``.
CacheEntry = Tuple[CacheKey, int, int]

from repro.perf import PerfCounters

#: Sentinel level/var for the terminal node; larger than any real level.
TERMINAL = 1 << 30

#: Sentinel var id for a garbage-collected (tombstoned) node slot.
DEAD = -1

#: The constant TRUE function (terminal node, regular edge).
ONE = 0

#: The constant FALSE function (terminal node, complement edge).
ZERO = 1

#: For each computed-table key tag, the tuple positions holding BDD refs.
#: Tags: 0=ite, 1=cofactor, 2=compose, 3=vector_compose, 4=exists,
#: 5=restrict, 6=constrain, 7=and_exists (see the respective modules).
#: ``repro.check.bdd_sanitizer`` audits cache hygiene against this map.
CACHE_TAG_REF_POSITIONS: Dict[int, Tuple[int, ...]] = {
    0: (1, 2, 3),
    1: (1,),
    2: (1, 3),
    3: (1,),
    4: (1,),
    5: (1, 2),
    6: (1, 2),
    7: (1, 2),
}

#: Cache tags whose *keys* encode the variable order (frozensets of
#: levels): entries under these tags alias different variable sets after a
#: swap and must be purged on reordering.  Every other tag's entry maps a
#: canonical-ref key to a canonical-ref result -- a pure function-level
#: fact that stays true under any order.
ORDER_DEPENDENT_TAGS: FrozenSet[int] = frozenset({4, 7})


class BddBudgetExceeded(RuntimeError):
    """Raised by node construction when the manager's allocation limit
    (:meth:`BDD.set_alloc_limit`) is hit; the manager stays consistent, so
    the caller may raise the limit and retry, or give up."""


class ComputedTable:
    """Bounded, slot-indexed computed table with overwrite-on-collision.

    Each slot holds one ``(key, result, generation)`` entry at index
    ``hash(key) & mask``; a colliding insert simply overwrites (an
    *eviction*).  Results are always canonical refs, so losing an entry can
    never change an operator's result -- only cost a recomputation.

    ``clear()`` is O(1): it bumps the generation stamp, invalidating every
    stored entry lazily.  The table starts small and doubles (dropping its
    contents) whenever sustained insert traffic shows it is undersized, up
    to ``max_slots``.
    """

    __slots__ = ("slots", "mask", "gen", "max_slots", "_resize_at",
                 "hits", "misses", "evictions", "inserts")

    def __init__(self, slots: int = 1 << 8, max_slots: int = 1 << 16) -> None:
        n = 1
        while n < slots:
            n <<= 1
        self.max_slots = max(n, max_slots)
        self.slots: List[Optional[CacheEntry]] = [None] * n
        self.mask = n - 1
        self.gen = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.inserts = 0
        self._resize_at = self.inserts + 2 * n

    def lookup(self, key: CacheKey) -> Optional[int]:
        s = self.slots[hash(key) & self.mask]
        if s is not None and s[0] == key and s[2] == self.gen:
            self.hits += 1
            return s[1]
        self.misses += 1
        return None

    def insert(self, key: CacheKey, value: int) -> None:
        self.inserts += 1
        if self.inserts >= self._resize_at and len(self.slots) < self.max_slots:
            n = len(self.slots) * 2
            self.slots = [None] * n
            self.mask = n - 1
            self._resize_at = self.inserts + 2 * n
        i = hash(key) & self.mask
        s = self.slots[i]
        if s is not None and s[2] == self.gen and s[0] != key:
            self.evictions += 1
        self.slots[i] = (key, value, self.gen)

    def clear(self) -> None:
        self.gen += 1

    def drop_order_dependent(self) -> int:
        """Invalidate only the entries whose keys encode the variable order
        (:data:`ORDER_DEPENDENT_TAGS`); every other entry survives a swap.

        This is the scoped alternative to :meth:`clear` after a standalone
        adjacent swap: O(slots) once instead of discarding the whole memo.
        Returns the number of entries dropped.
        """
        gen = self.gen
        dropped = 0
        slots = self.slots
        for i, s in enumerate(slots):
            if s is None or s[2] != gen:
                continue
            key = s[0]
            if (isinstance(key, tuple) and key
                    and isinstance(key[0], int)
                    and key[0] in ORDER_DEPENDENT_TAGS):
                slots[i] = None
                dropped += 1
        return dropped

    def valid_entries(self) -> int:
        """Occupied, non-stale slots (O(table size); diagnostics only)."""
        gen = self.gen
        return sum(1 for s in self.slots if s is not None and s[2] == gen)


class BDD:
    """A manager for reduced, ordered BDDs with complement edges."""

    def __init__(self, cache_slots: int = 1 << 8,
                 cache_max_slots: int = 1 << 16) -> None:
        # Parallel node arrays.  Node 0 is the terminal.
        self._var: List[int] = [TERMINAL]
        self._lo: List[int] = [ONE]
        self._hi: List[int] = [ONE]
        # Unique table: (var, lo, hi) -> node index.
        self._unique: Dict[Tuple[int, int, int], int] = {}
        # Computed table for ITE and other cached operators.
        self._cache = ComputedTable(cache_slots, cache_max_slots)
        # Variable bookkeeping.
        self._var_names: List[str] = []
        self._name_to_var: Dict[str, int] = {}
        self._var2level: List[int] = []
        self._level2var: List[int] = []
        # Nodes indexed by variable (lists may contain stale entries after
        # in-place reordering; consumers must re-check ``self._var``.  GC
        # purges the stale entries).
        self._nodes_by_var: Dict[int, List[int]] = {}
        # Garbage collection state: tombstoned slots available for reuse,
        # refcounted external roots, and the auto-GC trigger.
        self._free: List[int] = []
        self._roots: Dict[int, int] = {}
        self._gc_min_trigger = 2048
        self._gc_trigger = self._gc_min_trigger
        self.gc_dead_ratio = 0.25
        # Optional cumulative-allocation ceiling (see set_alloc_limit).
        self._alloc_limit: Optional[int] = None
        # Incremental reorder bookkeeping (see docs/PERFORMANCE.md §7).
        # _ref[i]: references into slot i from allocated (non-dead) parent
        # nodes plus registered-root registrations.  _var_counts[v]: number
        # of allocated non-dead nodes labelled v.  Both are maintained in
        # O(touched nodes) by mk/swap and rebuilt wholesale by each sweep,
        # so reordering reads exact per-level sizes without traversing.
        self._ref: List[int] = [0]
        self._var_counts: List[int] = []
        # Active reorder session: (pinned roots, interaction masks or None).
        self._reorder_session: Optional[
            Tuple[List[int], Optional[List[int]]]] = None
        # Growth-triggered dynamic reordering (enable_autoreorder): mk sets
        # the pending flag when the live count crosses the threshold; the
        # reorder itself runs at the next maybe_collect safe point, where
        # the caller has declared the full root set.
        self._autoreorder_threshold: Optional[int] = None
        self._autoreorder_method: str = "sift"
        self._reorder_pending = False
        self.perf = PerfCounters()
        # Optional repro.obs tracer: when set by a flow, kernel safe
        # points (GC sweeps, autoreorder firings) open sub-spans.  None
        # keeps the hot path a single attribute test.
        self.tracer: Optional["Tracer"] = None

    # ------------------------------------------------------------------
    # Variables and ordering
    # ------------------------------------------------------------------

    def new_var(self, name: Optional[str] = None) -> int:
        """Create a fresh variable at the bottom of the order; return its id."""
        var = len(self._var_names)
        if name is None:
            name = "v%d" % var
        if name in self._name_to_var:
            raise ValueError("duplicate variable name: %r" % name)
        self._var_names.append(name)
        self._name_to_var[name] = var
        self._var2level.append(len(self._level2var))
        self._level2var.append(var)
        self._nodes_by_var[var] = []
        self._var_counts.append(0)
        return var

    def add_vars(self, names: Iterable[str]) -> List[int]:
        """Create several named variables; return their ids in order."""
        return [self.new_var(n) for n in names]

    @property
    def num_vars(self) -> int:
        return len(self._var_names)

    def var_name(self, var: int) -> str:
        return self._var_names[var]

    def var_by_name(self, name: str) -> int:
        return self._name_to_var[name]

    def level_of_var(self, var: int) -> int:
        return self._var2level[var]

    def var_at_level(self, level: int) -> int:
        return self._level2var[level]

    def current_order(self) -> List[int]:
        """Variables from top level to bottom level."""
        return list(self._level2var)

    # ------------------------------------------------------------------
    # Structural accessors
    # ------------------------------------------------------------------

    def var_of(self, ref: int) -> int:
        """Variable labelling the top node of ``ref`` (TERMINAL for constants)."""
        return self._var[ref >> 1]

    def level(self, ref: int) -> int:
        """Level of the top node of ``ref`` (TERMINAL for constants)."""
        var = self._var[ref >> 1]
        if var == TERMINAL:
            return TERMINAL
        return self._var2level[var]

    def is_const(self, ref: int) -> bool:
        return ref >> 1 == 0

    def is_var(self, ref: int) -> bool:
        """True if ``ref`` is a plain positive or negative literal."""
        idx = ref >> 1
        if idx == 0:
            return False
        lo, hi = self._lo[idx], self._hi[idx]
        return (lo == ZERO and hi == ONE) or (lo == ONE and hi == ZERO)

    def is_complemented(self, ref: int) -> bool:
        return bool(ref & 1)

    def children(self, ref: int) -> Tuple[int, int]:
        """Phase-corrected (else, then) child refs of ``ref``.

        The returned refs denote the actual cofactor *functions* of ``ref``
        with respect to its top variable, i.e. the complement bit of ``ref``
        is pushed onto the children.  This gives a view of the BDD "without
        complement edges" in which every vertex is a phased ref -- the view
        on which the paper's path/dominator definitions operate.
        """
        idx, phase = ref >> 1, ref & 1
        return self._lo[idx] ^ phase, self._hi[idx] ^ phase

    def node(self, ref: int) -> Tuple[int, int, int]:
        """Raw stored triple (var, lo, hi) of the node under ``ref``."""
        idx = ref >> 1
        return self._var[idx], self._lo[idx], self._hi[idx]

    @property
    def num_nodes_allocated(self) -> int:
        """Length of the node arrays (live + tombstoned dead slots)."""
        return len(self._var)

    @property
    def num_nodes_live(self) -> int:
        """Allocated slots currently holding a live (non-tombstoned) node."""
        return len(self._var) - 1 - len(self._free)

    # ------------------------------------------------------------------
    # Node construction
    # ------------------------------------------------------------------

    def mk(self, var: int, lo: int, hi: int) -> int:
        """Return the canonical ref for ``var ? hi : lo``.

        Applies the reduction rule (``lo == hi``) and the complement-edge
        normalization (stored *then* edges are never complemented).
        """
        if lo == hi:
            return lo
        if hi & 1:
            return self._mk_raw(var, lo ^ 1, hi ^ 1) ^ 1
        return self._mk_raw(var, lo, hi)

    def set_alloc_limit(self, limit: Optional[int]) -> None:
        """Cap cumulative allocations (``perf.nodes_allocated``).

        Once set, any *fresh* node construction past the limit raises
        :class:`BddBudgetExceeded` before touching manager state; lookups
        of existing nodes are unaffected.  This is how callers make a
        single deep operator call interruptible (operators allocate
        bottom-up, so aborting mid-call leaves only canonical nodes
        behind).  ``None`` removes the limit.
        """
        self._alloc_limit = limit

    def _mk_raw(self, var: int, lo: int, hi: int) -> int:
        key = (var, lo, hi)
        idx = self._unique.get(key)
        if idx is None:
            if (self._alloc_limit is not None
                    and self.perf.nodes_allocated >= self._alloc_limit):
                raise BddBudgetExceeded(
                    "allocation limit %d reached" % self._alloc_limit)
            free = self._free
            if free:
                idx = free.pop()
                self._var[idx] = var
                self._lo[idx] = lo
                self._hi[idx] = hi
                self._ref[idx] = 0
                self.perf.nodes_reused += 1
            else:
                idx = len(self._var)
                self._var.append(var)
                self._lo.append(lo)
                self._hi.append(hi)
                self._ref.append(0)
                if idx + 1 > self.perf.peak_allocated_nodes:
                    self.perf.peak_allocated_nodes = idx + 1
            self.perf.nodes_allocated += 1
            self._unique[key] = idx
            self._nodes_by_var[var].append(idx)
            ref_arr = self._ref
            ref_arr[lo >> 1] += 1
            ref_arr[hi >> 1] += 1
            self._var_counts[var] += 1
            if (self._autoreorder_threshold is not None
                    and not self._reorder_pending
                    and (len(self._var) - 1 - len(self._free)
                         >= self._autoreorder_threshold)):
                self._reorder_pending = True
        return idx << 1

    def var_ref(self, var: int) -> int:
        """The literal function of variable ``var``."""
        return self.mk(var, ZERO, ONE)

    def literal(self, var: int, positive: bool = True) -> int:
        ref = self.var_ref(var)
        return ref if positive else ref ^ 1

    # ------------------------------------------------------------------
    # ITE and derived operators
    # ------------------------------------------------------------------

    def ite(self, f: int, g: int, h: int) -> int:
        """If-then-else: ``f & g | ~f & h`` (iterative, explicit stack)."""
        var_arr = self._var
        lo_arr = self._lo
        hi_arr = self._hi
        var2level = self._var2level
        level2var = self._level2var
        cache = self._cache
        slots, mask, gen = cache.slots, cache.mask, cache.gen
        mk = self.mk
        vals: List[int] = []
        # Frames: (0, f, g, h) computes ite(f, g, h) onto the value stack;
        # (1, var, key, phase) pops (r0, r1), builds the node, caches it.
        # The third element is a ref in compute frames but a cache key in
        # rebuild frames, hence the Any.
        stack: List[Tuple[int, int, Any, int]] = [(0, f, g, h)]
        pop = stack.pop
        push = stack.append
        vpush = vals.append
        while stack:
            tag, f, g, h = pop()
            if tag:
                r1 = vals.pop()
                r0 = vals.pop()
                r = mk(f, r0, r1)
                cache.insert(g, r)
                slots, mask = cache.slots, cache.mask
                vpush(r ^ h)
                continue
            self.perf.ite_calls += 1
            # Terminal cases.
            if f == ONE:
                vpush(g)
                continue
            if f == ZERO:
                vpush(h)
                continue
            if g == h:
                vpush(g)
                continue
            if g == ONE and h == ZERO:
                vpush(f)
                continue
            if g == ZERO and h == ONE:
                vpush(f ^ 1)
                continue
            # Standard normalizations reduce the cache footprint.
            if g == f:
                g = ONE
            elif g == (f ^ 1):
                g = ZERO
            if h == f:
                h = ZERO
            elif h == (f ^ 1):
                h = ONE
            if g == h:
                vpush(g)
                continue
            if g == ONE and h == ZERO:
                vpush(f)
                continue
            if g == ZERO and h == ONE:
                vpush(f ^ 1)
                continue
            # Symmetry: ite(f,1,h) == ite(h,1,f); ite(f,g,0) == ite(g,f,0);
            # prefer the smaller top level first for a canonical cache key.
            vf = var_arr[f >> 1]
            lf = TERMINAL if vf == TERMINAL else var2level[vf]
            if g == ONE:
                vh = var_arr[h >> 1]
                if vh != TERMINAL and var2level[vh] < lf:
                    f, h = h, f
            elif h == ZERO:
                vg = var_arr[g >> 1]
                if vg != TERMINAL and var2level[vg] < lf:
                    f, g = g, f
            elif h == ONE:
                vg = var_arr[g >> 1]
                if vg != TERMINAL and var2level[vg] < lf:
                    f, g = g ^ 1, f ^ 1
            elif g == ZERO:
                vh = var_arr[h >> 1]
                if vh != TERMINAL and var2level[vh] < lf:
                    f, h = h ^ 1, f ^ 1
            # Canonical polarity: first argument regular.
            if f & 1:
                f, g, h = f ^ 1, h, g
            # Output polarity: g regular.
            out_phase = 0
            if g & 1:
                g, h, out_phase = g ^ 1, h ^ 1, 1
            key = (0, f, g, h)
            s = slots[hash(key) & mask]
            if s is not None and s[0] == key and s[2] == gen:
                cache.hits += 1
                vpush(s[1] ^ out_phase)
                continue
            cache.misses += 1
            # Expand around the top variable of the triple.
            vf = var_arr[f >> 1]
            lf = var2level[vf]  # f is non-constant after normalization
            vg = var_arr[g >> 1]
            lg = TERMINAL if vg == TERMINAL else var2level[vg]
            vh = var_arr[h >> 1]
            lh = TERMINAL if vh == TERMINAL else var2level[vh]
            top = lf
            if lg < top:
                top = lg
            if lh < top:
                top = lh
            var = level2var[top]
            if lf == top:
                i, p = f >> 1, f & 1
                f0, f1 = lo_arr[i] ^ p, hi_arr[i] ^ p
            else:
                f0 = f1 = f
            if lg == top:
                i, p = g >> 1, g & 1
                g0, g1 = lo_arr[i] ^ p, hi_arr[i] ^ p
            else:
                g0 = g1 = g
            if lh == top:
                i, p = h >> 1, h & 1
                h0, h1 = lo_arr[i] ^ p, hi_arr[i] ^ p
            else:
                h0 = h1 = h
            push((1, var, key, out_phase))
            push((0, f1, g1, h1))
            push((0, f0, g0, h0))
        return vals[0]

    def not_(self, f: int) -> int:
        return f ^ 1

    def and_(self, f: int, g: int) -> int:
        return self.ite(f, g, ZERO)

    def or_(self, f: int, g: int) -> int:
        return self.ite(f, ONE, g)

    def xor_(self, f: int, g: int) -> int:
        return self.ite(f, g ^ 1, g)

    def xnor_(self, f: int, g: int) -> int:
        return self.ite(f, g, g ^ 1)

    def nand_(self, f: int, g: int) -> int:
        return self.and_(f, g) ^ 1

    def nor_(self, f: int, g: int) -> int:
        return self.or_(f, g) ^ 1

    def implies(self, f: int, g: int) -> int:
        return self.ite(f, g, ONE)

    def and_many(self, refs: Sequence[int]) -> int:
        """Conjunction by balanced-tree reduction.

        Pairing operands keeps intermediate BDDs small on wide supports
        (a linear fold conjoins every operand into one growing result).
        """
        ops = list(refs)
        if not ops:
            return ONE
        while len(ops) > 1:
            nxt = []
            for i in range(0, len(ops) - 1, 2):
                r = self.and_(ops[i], ops[i + 1])
                if r == ZERO:
                    return ZERO
                nxt.append(r)
            if len(ops) & 1:
                nxt.append(ops[-1])
            ops = nxt
        return ops[0]

    def or_many(self, refs: Sequence[int]) -> int:
        """Disjunction by balanced-tree reduction (see :meth:`and_many`)."""
        ops = list(refs)
        if not ops:
            return ZERO
        while len(ops) > 1:
            nxt = []
            for i in range(0, len(ops) - 1, 2):
                r = self.or_(ops[i], ops[i + 1])
                if r == ONE:
                    return ONE
                nxt.append(r)
            if len(ops) & 1:
                nxt.append(ops[-1])
            ops = nxt
        return ops[0]

    def xor_many(self, refs: Sequence[int]) -> int:
        """Parity by balanced-tree reduction (see :meth:`and_many`)."""
        ops = list(refs)
        if not ops:
            return ZERO
        while len(ops) > 1:
            nxt = [self.xor_(ops[i], ops[i + 1])
                   for i in range(0, len(ops) - 1, 2)]
            if len(ops) & 1:
                nxt.append(ops[-1])
            ops = nxt
        return ops[0]

    def leq(self, f: int, g: int) -> bool:
        """True iff ``f`` implies ``g`` (ON(f) subset of ON(g))."""
        return self.and_(f, g ^ 1) == ZERO

    # ------------------------------------------------------------------
    # Cofactors, composition, quantification
    # ------------------------------------------------------------------

    def cofactor(self, f: int, var: int, value: bool) -> int:
        """Shannon cofactor of ``f`` with respect to ``var = value``."""
        key = (1, f, var, value)
        cached = self._cache.lookup(key)
        if cached is not None:
            return cached
        lv = self._var2level[var]
        lf = self.level(f)
        if lf > lv:
            r = f
        elif lf == lv:
            lo, hi = self.children(f)
            r = hi if value else lo
        else:
            lo, hi = self.children(f)
            fvar = self.var_of(f)
            r = self.mk(
                fvar,
                self.cofactor(lo, var, value),
                self.cofactor(hi, var, value),
            )
        self._cache.insert(key, r)
        return r

    def cofactor_cube(self, f: int, assignment: Dict[int, bool]) -> int:
        """Cofactor with respect to several variable assignments."""
        out = f
        for var, value in assignment.items():
            out = self.cofactor(out, var, value)
        return out

    def compose(self, f: int, var: int, g: int) -> int:
        """Substitute function ``g`` for variable ``var`` in ``f``."""
        return self._compose(f, var, g, self._var2level[var])

    def _compose(self, f: int, var: int, g: int, lv: int) -> int:
        if self.level(f) > lv:
            return f
        key = (2, f, var, g)
        cached = self._cache.lookup(key)
        if cached is not None:
            return cached
        fvar = self.var_of(f)
        lo, hi = self.children(f)
        if fvar == var:
            r = self.ite(g, hi, lo)
        else:
            r0 = self._compose(lo, var, g, lv)
            r1 = self._compose(hi, var, g, lv)
            # fvar may be above or below var's level relative to substituted
            # functions; rebuild with ITE on the literal to stay canonical.
            r = self.ite(self.var_ref(fvar), r1, r0)
        self._cache.insert(key, r)
        return r

    def vector_compose(self, f: int, subst: Dict[int, int]) -> int:
        """Simultaneously substitute ``subst[var]`` for each variable."""
        if not subst:
            return f
        token = tuple(sorted(subst.items()))
        return self._vector_compose(f, subst, hash(token), token)

    def _vector_compose(self, f: int, subst: Dict[int, int], token_hash: int,
                        token: Tuple[Tuple[int, int], ...]) -> int:
        if self.is_const(f):
            return f
        key = (3, f, token_hash, token)
        cached = self._cache.lookup(key)
        if cached is not None:
            return cached
        fvar = self.var_of(f)
        lo, hi = self.children(f)
        r0 = self._vector_compose(lo, subst, token_hash, token)
        r1 = self._vector_compose(hi, subst, token_hash, token)
        g = subst.get(fvar)
        if g is None:
            g = self.var_ref(fvar)
        r = self.ite(g, r1, r0)
        self._cache.insert(key, r)
        return r

    def exists(self, f: int, variables: Iterable[int]) -> int:
        """Existential quantification over ``variables``."""
        levels = frozenset(self._var2level[v] for v in variables)
        if not levels:
            return f
        return self._exists(f, levels, max(levels))

    def _exists(self, f: int, levels: FrozenSet[int], max_level: int) -> int:
        lf = self.level(f)
        if lf > max_level:
            return f
        key = (4, f, levels)
        cached = self._cache.lookup(key)
        if cached is not None:
            return cached
        lo, hi = self.children(f)
        r0 = self._exists(lo, levels, max_level)
        r1 = self._exists(hi, levels, max_level)
        if lf in levels:
            r = self.or_(r0, r1)
        else:
            r = self.mk(self.var_of(f), r0, r1)
        self._cache.insert(key, r)
        return r

    def forall(self, f: int, variables: Iterable[int]) -> int:
        return self.exists(f ^ 1, variables) ^ 1

    # ------------------------------------------------------------------
    # Garbage collection
    # ------------------------------------------------------------------

    def register_root(self, ref: int) -> int:
        """Protect ``ref`` (and everything it reaches) from GC; returns it."""
        self._roots[ref] = self._roots.get(ref, 0) + 1
        self._ref[ref >> 1] += 1
        return ref

    def deregister_root(self, ref: int) -> None:
        """Drop one protection of ``ref`` (refcounted)."""
        count = self._roots.get(ref, 0)
        if count <= 0:
            return
        if count == 1:
            self._roots.pop(ref, None)
        else:
            self._roots[ref] = count - 1
        self._ref[ref >> 1] -= 1

    def registered_roots(self) -> List[int]:
        return list(self._roots)

    def collect_garbage(self, extra_roots: Sequence[int] = ()) -> int:
        """Mark-and-sweep: tombstone every node unreachable from the
        registered roots plus ``extra_roots``.

        Reclaimed slots land on the free list for ``mk`` to reuse; their
        unique-table entries are removed and ``_nodes_by_var`` is purged of
        stale indices.  The computed table is invalidated (it may reference
        dead refs).  All refs other than those reachable from the root set
        become invalid.  Returns the number of nodes reclaimed.
        """
        if self.tracer is not None:
            with self.tracer.span("bdd.gc",
                                  live_before=self.num_nodes_live):
                return self._collect_garbage_impl(extra_roots)
        return self._collect_garbage_impl(extra_roots)

    def _collect_garbage_impl(self, extra_roots: Sequence[int] = ()) -> int:
        var_arr, lo_arr, hi_arr = self._var, self._lo, self._hi
        n = len(var_arr)
        live = bytearray(n)
        live[0] = 1
        stack = [r >> 1 for r in self._roots]
        stack.extend(r >> 1 for r in extra_roots)
        while stack:
            idx = stack.pop()
            if live[idx]:
                continue
            live[idx] = 1
            stack.append(lo_arr[idx] >> 1)
            stack.append(hi_arr[idx] >> 1)
        unique = self._unique
        free: List[int] = []
        purged = 0
        for idx in range(1, n):
            var = var_arr[idx]
            if var == DEAD:
                free.append(idx)
                continue
            if live[idx]:
                continue
            key = (var, lo_arr[idx], hi_arr[idx])
            if unique.get(key) == idx:
                del unique[key]
            var_arr[idx] = DEAD
            free.append(idx)
            purged += 1
        # Shrink the node arrays past a dead tail so long-lived managers
        # do not keep peak-sized arrays forever.
        while n > 1 and var_arr[n - 1] == DEAD:
            n -= 1
        if n < len(var_arr):
            del var_arr[n:]
            del lo_arr[n:]
            del hi_arr[n:]
            while free and free[-1] >= n:
                free.pop()
        self._free = free
        # Purge stale/dead indices (including any trimmed off the tail) so
        # reorder passes stop iterating over garbage.
        for var, nodes in self._nodes_by_var.items():
            self._nodes_by_var[var] = [
                i for i in nodes if i < n and var_arr[i] == var]
        # Rebuild the incremental reorder bookkeeping wholesale: after a
        # sweep every allocated non-dead node is reachable, so one O(n)
        # pass restores exact per-var counts and reference counts.
        counts = [0] * len(self._var_names)
        ref_arr = [0] * n
        for idx in range(1, n):
            var = var_arr[idx]
            if var == DEAD:
                continue
            counts[var] += 1
            ref_arr[lo_arr[idx] >> 1] += 1
            ref_arr[hi_arr[idx] >> 1] += 1
        for root, rcount in self._roots.items():
            ref_arr[root >> 1] += rcount
        self._var_counts = counts
        self._ref = ref_arr
        self._cache.clear()
        live_count = n - 1 - len(free)
        perf = self.perf
        perf.gc_sweeps += 1
        perf.gc_reclaimed += purged
        perf.observe_live(live_count + purged)  # live just before the sweep
        self._gc_trigger = max(self._gc_min_trigger, 2 * live_count)
        return purged

    def maybe_collect(self, extra_roots: Sequence[int] = ()) -> int:
        """Auto-GC trigger: sweep when the manager has grown past the
        adaptive threshold *and* the dead-node ratio makes it worthwhile.

        Callers must pass every ref they still need (beyond registered
        roots) -- only call this at points where the full root set is known.
        Returns the number of nodes reclaimed (0 when no sweep ran).
        """
        active = len(self._var) - 1 - len(self._free)
        purged = 0
        if active >= self._gc_trigger:
            before = active
            purged = self.collect_garbage(extra_roots)
            if before and purged / before < self.gc_dead_ratio:
                # Mostly-live manager: back off, don't thrash on marking.
                self._gc_trigger = max(self._gc_trigger,
                                       2 * (before - purged))
        if self._reorder_pending:
            self._fire_autoreorder(extra_roots)
        return purged

    # ------------------------------------------------------------------
    # Incremental reordering support (see repro.bdd.reorder)
    # ------------------------------------------------------------------

    @property
    def reordering(self) -> bool:
        """True while a reorder session (sift/window pass) is active."""
        return self._reorder_session is not None

    def level_size(self, level: int) -> int:
        """Allocated non-dead nodes labelled with the variable at ``level``
        (exact live count at reorder safe points)."""
        return self._var_counts[self._level2var[level]]

    def begin_reorder(self, roots: Sequence[int],
                      interactions: bool = True) -> int:
        """Open a reorder session: collect garbage so that every allocated
        node is reachable from ``roots`` plus the registered roots, pin
        ``roots``, and (optionally) build the variable interaction matrix.

        Inside a session ``swap_adjacent`` reclaims nodes the moment their
        reference count drops to zero, which keeps ``num_nodes_live`` and
        the per-level counters exact after every swap -- no traversals.
        Returns the live node count.  Sessions do not nest.
        """
        if self._reorder_session is not None:
            raise RuntimeError("reorder session already active")
        self.collect_garbage(extra_roots=roots)
        pinned = list(roots)
        for r in pinned:
            self.register_root(r)
        masks: Optional[List[int]] = None
        if interactions and self.num_vars > 1:
            from repro.bdd.traverse import interaction_masks

            masks = interaction_masks(self, self.registered_roots())
        self._reorder_session = (pinned, masks)
        return self.num_nodes_live

    def end_reorder(self) -> None:
        """Close the reorder session opened by :meth:`begin_reorder`.

        The computed table needs no per-swap invalidation: the session's
        opening sweep already version-tagged every entry stale, and no
        operator may run (hence cache) while a session is active.
        """
        session = self._reorder_session
        if session is None:
            raise RuntimeError("no reorder session active")
        for r in session[0]:
            self.deregister_root(r)
        self._reorder_session = None

    def vars_interact(self, x: int, y: int) -> bool:
        """True unless the session's interaction matrix proves that ``x``
        and ``y`` never co-occur in a live cone (in which case swapping
        their adjacent levels is a pure O(1) level-map transposition)."""
        session = self._reorder_session
        if session is None or session[1] is None:
            return True
        return bool((session[1][x] >> y) & 1)

    def enable_autoreorder(self, threshold: int,
                           method: str = "sift") -> None:
        """Arm growth-triggered dynamic reordering (CUDD-style).

        When the live node count crosses ``threshold``, the next
        :meth:`maybe_collect` safe point runs the given reorder method
        over the registered roots plus the caller's ``extra_roots``, then
        raises the threshold to twice the post-reorder size so a healthy
        table does not thrash.  ``method`` is a key of
        :data:`repro.bdd.reorder.AUTOREORDER_METHODS`.
        """
        from repro.bdd.reorder import AUTOREORDER_METHODS

        if method not in AUTOREORDER_METHODS:
            raise ValueError("unknown autoreorder method %r (have %r)"
                             % (method, sorted(AUTOREORDER_METHODS)))
        if threshold <= 0:
            raise ValueError("autoreorder threshold must be positive")
        self._autoreorder_threshold = threshold
        self._autoreorder_method = method

    def disable_autoreorder(self) -> None:
        self._autoreorder_threshold = None
        self._reorder_pending = False

    def _fire_autoreorder(self, extra_roots: Sequence[int]) -> None:
        """Run the armed reorder method at a safe point (maybe_collect)."""
        self._reorder_pending = False
        threshold = self._autoreorder_threshold
        if threshold is None or self._reorder_session is not None:
            return
        if self.num_nodes_live < threshold:
            return
        from repro.bdd.reorder import AUTOREORDER_METHODS

        self.perf.autoreorder_triggers += 1
        if self.tracer is not None:
            with self.tracer.span("bdd.autoreorder",
                                  method=self._autoreorder_method,
                                  live_before=self.num_nodes_live):
                AUTOREORDER_METHODS[self._autoreorder_method](
                    self, list(extra_roots))
        else:
            AUTOREORDER_METHODS[self._autoreorder_method](
                self, list(extra_roots))
        self._autoreorder_threshold = max(threshold,
                                          2 * self.num_nodes_live)

    # ------------------------------------------------------------------
    # Cache management and perf reporting
    # ------------------------------------------------------------------

    def clear_cache(self) -> None:
        """Drop the computed table (unique table is kept)."""
        self._cache.clear()

    def cache_size(self) -> int:
        return self._cache.valid_entries()

    def perf_snapshot(self) -> Dict[str, float]:
        """Kernel-health counters as a flat dict (see ``repro.perf``)."""
        perf = self.perf
        cache = self._cache
        perf.observe_live(self.num_nodes_live)
        perf.observe_allocated(len(self._var))
        lookups = cache.hits + cache.misses
        return {
            "ite_calls": perf.ite_calls,
            "nodes_allocated": perf.nodes_allocated,
            "nodes_reused": perf.nodes_reused,
            "gc_sweeps": perf.gc_sweeps,
            "gc_reclaimed": perf.gc_reclaimed,
            "peak_live_nodes": perf.peak_live_nodes,
            "peak_allocated_nodes": perf.peak_allocated_nodes,
            "checks_run": perf.checks_run,
            "check_violations": perf.check_violations,
            "reorder_swaps": perf.reorder_swaps,
            "reorder_swaps_skipped": perf.reorder_swaps_skipped,
            "reorder_passes": perf.reorder_passes,
            "reorder_time_s": perf.reorder_time_s,
            "reorder_size_before": perf.reorder_size_before,
            "reorder_size_after": perf.reorder_size_after,
            "autoreorder_triggers": perf.autoreorder_triggers,
            "live_traversals": perf.live_traversals,
            "cache_hits": cache.hits,
            "cache_misses": cache.misses,
            "cache_evictions": cache.evictions,
            "cache_inserts": cache.inserts,
            "cache_slots": len(cache.slots),
            "cache_hit_rate": (cache.hits / lookups) if lookups else 0.0,
            "unique_live_ratio": (
                self.num_nodes_live / len(self._var) if len(self._var) else 0.0),
        }
