"""Irredundant sum-of-products extraction from BDDs (Minato-Morreale ISOP).

Used to convert decomposed BDD fragments back into cube covers when writing
BLIF, and as the bridge from BDD-represented nodes to the cube world of the
SIS-like baseline.  ``isop(mgr, f)`` returns an irredundant prime-ish cover
of ``f``; ``isop_interval(mgr, lower, upper)`` returns a cover ``g`` with
``lower <= g <= upper`` -- the classic incompletely-specified form.

Cubes are dicts ``{var: bool}`` (missing vars are don't-cares).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.bdd.manager import BDD, ONE, ZERO

Cube = Dict[int, bool]


def isop(mgr: BDD, f: int) -> List[Cube]:
    """Irredundant SOP cover of a completely specified function."""
    cover, _ = _isop(mgr, f, f, {})
    return cover


def isop_interval(mgr: BDD, lower: int, upper: int) -> Tuple[List[Cube], int]:
    """Cover of any function in the interval [lower, upper].

    Returns ``(cubes, bdd_of_cover)``.  Requires ``lower <= upper``.
    """
    if not mgr.leq(lower, upper):
        raise ValueError("isop interval requires lower <= upper")
    return _isop(mgr, lower, upper, {})


def _isop(mgr: BDD, lower: int, upper: int,
          memo: Dict[Tuple[int, int], Tuple[List[Cube], int]],
          ) -> Tuple[List[Cube], int]:
    if lower == ZERO:
        return [], ZERO
    if upper == ONE:
        return [{}], ONE
    key = (lower, upper)
    if key in memo:
        return memo[key]
    # Branch variable: the top variable of the interval.
    level = min(mgr.level(lower), mgr.level(upper))
    var = mgr.var_at_level(level)
    l0, l1 = _cof(mgr, lower, level)
    u0, u1 = _cof(mgr, upper, level)
    # Cubes that must contain literal ~var / var.
    lsub0 = mgr.and_(l0, u1 ^ 1)
    lsub1 = mgr.and_(l1, u0 ^ 1)
    c0, g0 = _isop(mgr, lsub0, u0, memo)
    c1, g1 = _isop(mgr, lsub1, u1, memo)
    # Remaining onset not yet covered; can be covered var-independently.
    lnew0 = mgr.and_(l0, g0 ^ 1)
    lnew1 = mgr.and_(l1, g1 ^ 1)
    lnew = mgr.or_(lnew0, lnew1)
    cd, gd = _isop(mgr, lnew, mgr.and_(u0, u1), memo)
    cover: List[Cube] = []
    for cube in c0:
        cube = dict(cube)
        cube[var] = False
        cover.append(cube)
    for cube in c1:
        cube = dict(cube)
        cube[var] = True
        cover.append(cube)
    cover.extend(cd)
    vref = mgr.var_ref(var)
    g = mgr.or_(gd, mgr.ite(vref, g1, g0))
    memo[key] = (cover, g)
    return cover, g


def _cof(mgr: BDD, f: int, level: int) -> Tuple[int, int]:
    if mgr.level(f) == level:
        return mgr.children(f)
    return f, f


def cover_to_bdd(mgr: BDD, cover: List[Cube]) -> int:
    """Build the BDD of a cube cover."""
    out = ZERO
    for cube in cover:
        term = ONE
        for var, val in cube.items():
            term = mgr.and_(term, mgr.literal(var, val))
        out = mgr.or_(out, term)
    return out


def cover_literal_count(cover: List[Cube]) -> int:
    """Total number of literals in a cover (the SIS cost metric)."""
    return sum(len(cube) for cube in cover)
