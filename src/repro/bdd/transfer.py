"""Inter-manager BDD transfer -- the paper's "BDD mapping" (Section IV-B).

During *eliminate*, variables die as Boolean nodes are collapsed away; the
paper reports that ~63% of manager variables become unused after the first
iteration and that reordering a manager polluted with dead variables is
hopelessly slow.  BDS's fix is to initialize a **fresh manager containing
only the used variables** and transfer every live BDD into it through a
variable mapping -- making eliminate ~85x faster.  ``transfer_many`` is that
mechanism; the ablation benchmark ``bench_ablation_mapping`` measures the
speedup it buys.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set

from repro.bdd.manager import BDD, ONE


def transfer(src: BDD, dst: BDD, ref: int,
             var_map: Optional[Dict[int, int]] = None,
             _memo: Optional[Dict[int, int]] = None) -> int:
    """Copy the function ``ref`` from manager ``src`` into manager ``dst``.

    ``var_map`` maps source variable ids to destination variable ids; when
    omitted, variables are matched by name (created in ``dst`` on demand).
    """
    if var_map is None:
        var_map = {}
        for var in sorted(_used_vars(src, [ref]), key=src.level_of_var):
            name = src.var_name(var)
            try:
                var_map[var] = dst.var_by_name(name)
            except KeyError:
                var_map[var] = dst.new_var(name)
    memo: Dict[int, int] = {0: ONE} if _memo is None else _memo
    order_ok = _is_order_preserving(src, dst, var_map)
    return _transfer_rec(src, dst, ref, var_map, memo, order_ok)


def transfer_many(src: BDD, refs: Sequence[int],
                  var_map: Optional[Dict[int, int]] = None,
                  order: Optional[Sequence[int]] = None) -> "TransferResult":
    """Transfer several functions into a brand-new compacted manager.

    Only variables actually used by ``refs`` are created in the new manager,
    in their current relative order (or in ``order`` if given).  Returns a
    :class:`TransferResult` with the new manager, the new refs and the
    variable mapping.
    """
    dst = BDD()
    if var_map is None:
        used = _used_vars(src, refs)
        if order is None:
            ordered = sorted(used, key=src.level_of_var)
        else:
            ordered = [v for v in order if v in used]
            ordered += sorted(used - set(ordered), key=src.level_of_var)
        var_map = {v: dst.new_var(src.var_name(v)) for v in ordered}
    else:
        for v in sorted(var_map, key=src.level_of_var):
            if var_map[v] >= dst.num_vars:
                raise ValueError("explicit var_map must target a prepared manager")
    memo: Dict[int, int] = {0: ONE}
    order_ok = _is_order_preserving(src, dst, var_map)
    new_refs = [_transfer_rec(src, dst, r, var_map, memo, order_ok) for r in refs]
    return TransferResult(dst, new_refs, var_map)


class TransferResult:
    """Outcome of :func:`transfer_many`."""

    def __init__(self, manager: BDD, refs: List[int],
                 var_map: Dict[int, int]) -> None:
        self.manager = manager
        self.refs = refs
        self.var_map = var_map


def _is_order_preserving(src: BDD, dst: BDD, var_map: Dict[int, int]) -> bool:
    pairs = sorted((src.level_of_var(v), dst.level_of_var(w))
                   for v, w in var_map.items())
    dst_levels = [d for _, d in pairs]
    return all(a < b for a, b in zip(dst_levels, dst_levels[1:]))


def _transfer_rec(src: BDD, dst: BDD, ref: int, var_map: Dict[int, int],
                  memo: Dict[int, int], ordered: bool) -> int:
    idx, phase = ref >> 1, ref & 1
    if idx in memo:
        return memo[idx] ^ phase
    var, lo, hi = src._var[idx], src._lo[idx], src._hi[idx]
    new_lo = _transfer_rec(src, dst, lo, var_map, memo, ordered)
    new_hi = _transfer_rec(src, dst, hi, var_map, memo, ordered)
    if ordered:
        out = dst.mk(var_map[var], new_lo, new_hi)
    else:
        # Destination order differs: rebuild through ITE, which re-orders.
        out = dst.ite(dst.var_ref(var_map[var]), new_hi, new_lo)
    memo[idx] = out
    return out ^ phase


def _used_vars(src: BDD, refs: Sequence[int]) -> Set[int]:
    from repro.bdd.traverse import support_many

    return support_many(src, refs)
