"""Graphviz DOT export for BDDs (complement edges drawn dotted, as in the
paper's figures: solid 1-edge, dashed 0-edge, bubble on complement edges)."""

from __future__ import annotations

from typing import List, Sequence, Set

from repro.bdd.manager import BDD


def to_dot(mgr: BDD, refs: Sequence[int], names: Sequence[str] = ()) -> str:
    """Render one or more functions as a DOT digraph string."""
    lines = ["digraph bdd {", '  rankdir=TB;']
    seen: Set[int] = set()
    stack: List[int] = []
    for i, ref in enumerate(refs):
        label = names[i] if i < len(names) else "f%d" % i
        lines.append('  "%s" [shape=plaintext];' % label)
        style = "dotted" if ref & 1 else "solid"
        lines.append('  "%s" -> n%d [style=%s];' % (label, ref >> 1, style))
        stack.append(ref >> 1)
    lines.append('  n0 [shape=box,label="1"];')
    while stack:
        idx = stack.pop()
        if idx in seen or idx == 0:
            continue
        seen.add(idx)
        var, lo, hi = mgr._var[idx], mgr._lo[idx], mgr._hi[idx]
        lines.append('  n%d [shape=circle,label="%s"];' % (idx, mgr.var_name(var)))
        lo_style = "dotted" if lo & 1 else "dashed"
        lines.append('  n%d -> n%d [style=%s];' % (idx, lo >> 1, lo_style))
        lines.append('  n%d -> n%d [style=solid];' % (idx, hi >> 1))
        stack.append(lo >> 1)
        stack.append(hi >> 1)
    lines.append("}")
    return "\n".join(lines)
