"""Higher-order BDD operators built over the manager core.

``and_exists`` is the classic relational product (conjunction fused with
existential quantification, avoiding the intermediate conjunction blowup);
it accelerates the image computations of the satisfiability don't-care
pass.  ``swap_vars`` and ``rename_vars`` are substitution conveniences.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Tuple

from repro.bdd.manager import BDD, ONE, ZERO

_AND_EXISTS = 7


def and_exists(mgr: BDD, f: int, g: int, variables: Iterable[int]) -> int:
    """Compute ``exists variables . f & g`` without building ``f & g``."""
    levels = frozenset(mgr.level_of_var(v) for v in variables)
    if not levels:
        return mgr.and_(f, g)
    return _and_exists(mgr, f, g, levels, max(levels))


def _and_exists(mgr: BDD, f: int, g: int, levels: FrozenSet[int],
                max_level: int) -> int:
    if f == ZERO or g == ZERO:
        return ZERO
    if f == ONE and g == ONE:
        return ONE
    if f == ONE:
        return mgr._exists(g, levels, max_level)
    if g == ONE:
        return mgr._exists(f, levels, max_level)
    if f == g:
        return mgr._exists(f, levels, max_level)
    if f == (g ^ 1):
        return ZERO
    if min(mgr.level(f), mgr.level(g)) > max_level:
        return mgr.and_(f, g)
    if g < f:
        f, g = g, f
    key = (_AND_EXISTS, f, g, levels)
    cached = mgr._cache.lookup(key)
    if cached is not None:
        return cached
    lf, lg = mgr.level(f), mgr.level(g)
    top = min(lf, lg)
    var = mgr.var_at_level(top)
    f0, f1 = mgr.children(f) if lf == top else (f, f)
    g0, g1 = mgr.children(g) if lg == top else (g, g)
    r0 = _and_exists(mgr, f0, g0, levels, max_level)
    if top in levels:
        if r0 == ONE:
            r = ONE
        else:
            r1 = _and_exists(mgr, f1, g1, levels, max_level)
            r = mgr.or_(r0, r1)
    else:
        r1 = _and_exists(mgr, f1, g1, levels, max_level)
        r = mgr.mk(var, r0, r1)
    mgr._cache.insert(key, r)
    return r


def rename_vars(mgr: BDD, f: int, mapping: Dict[int, int]) -> int:
    """Substitute variables by variables (a pure renaming).

    The mapping must be injective on the support; renamed functions are
    rebuilt through ITE so arbitrary level changes are allowed.
    """
    subst = {old: mgr.var_ref(new) for old, new in mapping.items()}
    return mgr.vector_compose(f, subst)


def swap_vars(mgr: BDD, f: int, pairs: Iterable[Tuple[int, int]]) -> int:
    """Exchange variable pairs simultaneously (x<->y for each pair)."""
    mapping: Dict[int, int] = {}
    for a, b in pairs:
        mapping[a] = b
        mapping[b] = a
    return rename_vars(mgr, f, mapping)
