"""Traversal utilities: support, size, evaluation, SAT- and path-counting.

Path statistics are central to the paper's structural decompositions: the
dominator definitions (Definitions 2-4, 9-10) are stated on the *expanded*
view of a complement-edge BDD in which every vertex is a phased ref (see
:meth:`repro.bdd.manager.BDD.children`).  All functions here operate on that
view, so "node" below means a phased ref unless stated otherwise.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Sequence, Set, Tuple

from repro.bdd.manager import BDD, ONE, TERMINAL, ZERO


def support(mgr: BDD, ref: int) -> Set[int]:
    """Set of variables the function depends on."""
    seen: Set[int] = set()
    out: Set[int] = set()
    stack = [ref >> 1]
    while stack:
        idx = stack.pop()
        if idx == 0 or idx in seen:
            continue
        seen.add(idx)
        out.add(mgr._var[idx])
        stack.append(mgr._lo[idx] >> 1)
        stack.append(mgr._hi[idx] >> 1)
    return out


def support_many(mgr: BDD, refs: Iterable[int]) -> Set[int]:
    out: Set[int] = set()
    for ref in refs:
        out |= support(mgr, ref)
    return out


def node_count(mgr: BDD, ref: int) -> int:
    """Number of BDD nodes reachable from ``ref`` (excluding the terminal)."""
    return shared_node_count(mgr, [ref])


def shared_node_count(mgr: BDD, refs: Sequence[int]) -> int:
    """Nodes in the shared DAG of several functions (excluding the terminal).

    This is the paper's cost function for *eliminate* (Section IV-B): the
    size of a set of local BDDs counted with sharing.
    """
    seen: Set[int] = set()
    stack = [r >> 1 for r in refs]
    while stack:
        idx = stack.pop()
        if idx == 0 or idx in seen:
            continue
        seen.add(idx)
        stack.append(mgr._lo[idx] >> 1)
        stack.append(mgr._hi[idx] >> 1)
    return len(seen)


def live_nodes(mgr: BDD, refs: Sequence[int]) -> Set[int]:
    """Node indices reachable from ``refs`` (including the terminal).

    A full mark traversal -- O(reachable nodes).  Counted in
    ``mgr.perf.live_traversals`` so tests can assert that hot loops (the
    sifting inner loop in particular) never fall back to it.
    """
    mgr.perf.live_traversals += 1
    seen: Set[int] = {0}
    stack = [r >> 1 for r in refs]
    while stack:
        idx = stack.pop()
        if idx in seen:
            continue
        seen.add(idx)
        stack.append(mgr._lo[idx] >> 1)
        stack.append(mgr._hi[idx] >> 1)
    return seen


def support_masks(mgr: BDD, refs: Sequence[int]) -> Dict[int, int]:
    """Per-node support bitmasks (bit ``v`` set iff var ``v`` occurs in the
    node's subgraph) for every node reachable from ``refs``.

    One post-order pass over the shared DAG; masks are Python ints used as
    bitsets, so unioning supports is O(num_vars / machine word).
    """
    masks: Dict[int, int] = {0: 0}
    var_arr, lo_arr, hi_arr = mgr._var, mgr._lo, mgr._hi
    stack: List[Tuple[int, bool]] = [(r >> 1, False) for r in refs]
    while stack:
        idx, expanded = stack.pop()
        if idx in masks and not expanded:
            continue
        if expanded:
            masks[idx] = ((1 << var_arr[idx])
                          | masks[lo_arr[idx] >> 1]
                          | masks[hi_arr[idx] >> 1])
            continue
        stack.append((idx, True))
        stack.append((lo_arr[idx] >> 1, False))
        stack.append((hi_arr[idx] >> 1, False))
    return masks


def interaction_masks(mgr: BDD, refs: Sequence[int]) -> List[int]:
    """The variable interaction matrix of a root set, as bitmasks.

    Variables ``x`` and ``y`` *interact* when both occur in the support of
    one of the ``refs``.  The result maps each var to the bitmask of vars
    it interacts with (symmetric; a support var always interacts with
    itself).  When every reachable node is reachable from ``refs`` (the
    reorderer's session invariant), non-interacting variables at adjacent
    levels can be swapped as a pure level-map transposition: no node
    labelled ``x`` can then have ``y`` in its subgraph, because any such
    node lies in some root cone whose support would contain both.
    """
    masks = support_masks(mgr, refs)
    out = [0] * mgr.num_vars
    for ref in refs:
        supp = masks[ref >> 1]
        rest = supp
        while rest:
            low = rest & -rest
            out[low.bit_length() - 1] |= supp
            rest ^= low
    return out


def live_node_count(mgr: BDD, refs: Sequence[int]) -> int:
    """Live node count of ``refs`` (excluding the terminal), recorded into
    the manager's ``peak_live_nodes`` perf gauge."""
    n = len(live_nodes(mgr, refs)) - 1
    mgr.perf.observe_live(n)
    return n


def evaluate(mgr: BDD, ref: int, assignment: Dict[int, bool]) -> bool:
    """Evaluate the function under a (complete for its support) assignment."""
    while not mgr.is_const(ref):
        lo, hi = mgr.children(ref)
        ref = hi if assignment[mgr.var_of(ref)] else lo
    return ref == ONE


def sat_count(mgr: BDD, ref: int, nvars: int) -> int:
    """Number of satisfying assignments over ``nvars`` variables.

    ``nvars`` must be at least the size of the function's support.  The
    count is taken over the support and scaled by the free variables, so it
    is independent of the manager's variable order and of unrelated
    variables living in the same manager.
    """
    if mgr.is_const(ref):
        return (1 << nvars) if ref == ONE else 0
    supp_levels = sorted(mgr.level_of_var(v) for v in support(mgr, ref))
    if nvars < len(supp_levels):
        raise ValueError("nvars smaller than the function's support")
    # rank_below[l] -> number of support levels strictly greater than l.
    import bisect

    def vars_between(upper_level: int, lower_level: int) -> int:
        """Support variables with level in the open interval."""
        left = bisect.bisect_right(supp_levels, upper_level)
        if lower_level == TERMINAL:
            right = len(supp_levels)
        else:
            right = bisect.bisect_left(supp_levels, lower_level)
        return right - left

    memo: Dict[int, int] = {ONE: 1, ZERO: 0}

    def count(r: int) -> int:
        if r in memo:
            return memo[r]
        lo, hi = mgr.children(r)
        lr = mgr.level(r)
        n = count(lo) * (1 << vars_between(lr, mgr.level(lo)))
        n += count(hi) * (1 << vars_between(lr, mgr.level(hi)))
        memo[r] = n
        return n

    top_free = bisect.bisect_left(supp_levels, mgr.level(ref))
    over_support = count(ref) * (1 << top_free)
    return over_support << (nvars - len(supp_levels))


def pick_assignment(mgr: BDD, ref: int) -> Dict[int, bool]:
    """Return one satisfying assignment (partial, over decided vars).

    Raises ``ValueError`` on the constant-false function.
    """
    if ref == ZERO:
        raise ValueError("function is unsatisfiable")
    out: Dict[int, bool] = {}
    while ref != ONE:
        lo, hi = mgr.children(ref)
        var = mgr.var_of(ref)
        if hi != ZERO:
            out[var] = True
            ref = hi
        else:
            out[var] = False
            ref = lo
    return out


# ----------------------------------------------------------------------
# Phased-vertex (expanded graph) machinery for the decomposition engine
# ----------------------------------------------------------------------


def phased_vertices(mgr: BDD, root: int) -> List[int]:
    """All phased refs reachable from ``root``, in reverse topological order.

    Terminals (``ONE``/``ZERO``) are included when reachable.  The order
    guarantees children precede parents.
    """
    order: List[int] = []
    seen: Set[int] = set()
    stack: List[Tuple[int, bool]] = [(root, False)]
    while stack:
        ref, expanded = stack.pop()
        if expanded:
            order.append(ref)
            continue
        if ref in seen:
            continue
        seen.add(ref)
        stack.append((ref, True))
        if not mgr.is_const(ref):
            lo, hi = mgr.children(ref)
            stack.append((lo, False))
            stack.append((hi, False))
    return order


def count_paths_to_terminals(mgr: BDD, root: int) -> Tuple[Dict[int, int], Dict[int, int]]:
    """For every reachable phased vertex, the number of 1-paths and 0-paths
    from that vertex down to the terminals.

    Returns ``(one_paths, zero_paths)`` dicts keyed by phased ref.
    """
    one: Dict[int, int] = {ONE: 1, ZERO: 0}
    zero: Dict[int, int] = {ONE: 0, ZERO: 1}
    for ref in phased_vertices(mgr, root):
        if mgr.is_const(ref):
            continue
        lo, hi = mgr.children(ref)
        one[ref] = one[lo] + one[hi]
        zero[ref] = zero[lo] + zero[hi]
    return one, zero


def count_paths_from_root(mgr: BDD, root: int) -> Dict[int, int]:
    """For every reachable phased vertex, the number of edge-paths from the
    root down to that vertex (the root maps to 1)."""
    incoming: Dict[int, int] = {root: 1}
    for ref in reversed(phased_vertices(mgr, root)):
        if mgr.is_const(ref):
            continue
        n = incoming.get(ref, 0)
        if n == 0:
            continue
        lo, hi = mgr.children(ref)
        incoming[lo] = incoming.get(lo, 0) + n
        incoming[hi] = incoming.get(hi, 0) + n
    return incoming


def leaf_edge_stats(mgr: BDD, root: int) -> Tuple[int, int, int]:
    """Count (edges_to_one, edges_to_zero, complement_edges) of the BDD.

    Leaf edges drive the choice between AND/OR-style decomposition (rich in
    leaf edges) and XOR-style decomposition (rich in complement edges) --
    this is the paper's "BDD structural scan" (Section IV-C).
    """
    to_one = to_zero = comp = 0
    if root & 1:
        comp += 1
    for ref in phased_vertices(mgr, root):
        if mgr.is_const(ref):
            continue
        lo, hi = mgr.children(ref)
        for child in (lo, hi):
            if child == ONE:
                to_one += 1
            elif child == ZERO:
                to_zero += 1
        # A stored complement edge exists where the raw lo pointer carries
        # the complement bit (stored hi edges are never complemented).
        _, raw_lo, _ = mgr.node(ref)
        if raw_lo & 1:
            comp += 1
    return to_one, to_zero, comp


def iter_paths(mgr: BDD, root: int, limit: int = 100000) -> Iterator[Tuple[Dict[int, bool], bool]]:
    """Enumerate (cube, terminal_value) for every path of the BDD.

    Intended for tests on small functions; raises if more than ``limit``
    paths would be produced.
    """
    produced = 0

    def rec(ref: int, cube: Dict[int, bool],
            ) -> Iterator[Tuple[Dict[int, bool], bool]]:
        nonlocal produced
        if mgr.is_const(ref):
            produced += 1
            if produced > limit:
                raise RuntimeError("too many paths")
            yield dict(cube), ref == ONE
            return
        var = mgr.var_of(ref)
        lo, hi = mgr.children(ref)
        cube[var] = False
        yield from rec(lo, cube)
        cube[var] = True
        yield from rec(hi, cube)
        del cube[var]

    yield from rec(root, {})
