"""Reduced, ordered binary decision diagrams with complement edges.

This package is the foundational substrate of the BDS reproduction.  It
implements, from scratch, everything the paper assumes of a "BDD package":

* canonical ROBDDs with complement edges (Brace-Rudell-Bryant style),
* the ITE operator and the usual derived Boolean operators,
* cofactors, composition, and quantification,
* the Coudert-Madre ``restrict``/``constrain`` don't-care minimizers
  (Section III-B of the paper relies on RESTRICT),
* Minato-Morreale irredundant sum-of-products extraction,
* path/leaf-edge statistics used by the structural decomposition engine,
* variable reordering by sifting (Rudell [30]),
* inter-manager transfer -- the paper's "BDD mapping" (Section IV-B).

References are plain ints: ``ref = node_index << 1 | complement_bit``.
The constant ``ONE`` is ref ``0`` and ``ZERO`` is its complement, ref ``1``.
"""

from repro.bdd.manager import BDD, ONE, ZERO, TERMINAL, BddBudgetExceeded
from repro.bdd.ops import and_exists, rename_vars, swap_vars
from repro.bdd.transfer import transfer, transfer_many
from repro.bdd.reorder import sift, random_order, force_order
from repro.bdd.dot import to_dot

__all__ = [
    "BDD",
    "BddBudgetExceeded",
    "ONE",
    "ZERO",
    "TERMINAL",
    "and_exists",
    "rename_vars",
    "swap_vars",
    "transfer",
    "transfer_many",
    "sift",
    "random_order",
    "force_order",
    "to_dot",
]
