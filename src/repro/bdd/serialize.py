"""BDD serialization: dump/load function sets as a portable text format.

Lets users persist decomposition state or ship BDDs between processes.
The format is line-based and order-preserving::

    .bdd 1
    .vars a b c
    .nodes
    1 0 2 1          # node 1: var-index 0, lo-ref 2, hi-ref 1 (refs are
    2 1 1 0          #   node<<1|complement; node 0 is the terminal)
    .roots 4 5
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.bdd.manager import BDD, ONE
from repro.bdd.traverse import support_many


def dumps(mgr: BDD, roots: Sequence[int]) -> str:
    """Serialize the functions ``roots`` (and their shared DAG)."""
    used_vars = sorted(support_many(mgr, roots), key=mgr.level_of_var)
    var_index = {v: i for i, v in enumerate(used_vars)}
    # Children-first order.  Raw index order is NOT topological once the
    # manager's free-list has recycled node slots, so walk the DAG.
    live = _topological_live(mgr, roots)
    node_index = {0: 0}
    for i, idx in enumerate(live, start=1):
        node_index[idx] = i

    def remap(ref: int) -> int:
        return (node_index[ref >> 1] << 1) | (ref & 1)

    lines = [".bdd 1", ".vars " + " ".join(mgr.var_name(v) for v in used_vars),
             ".nodes"]
    for idx in live:
        lines.append("%d %d %d %d" % (
            node_index[idx], var_index[mgr._var[idx]],
            remap(mgr._lo[idx]), remap(mgr._hi[idx])))
    lines.append(".roots " + " ".join(str(remap(r)) for r in roots))
    return "\n".join(lines) + "\n"


def _topological_live(mgr: BDD, roots: Sequence[int]) -> List[int]:
    """Live node indices (terminal excluded), children before parents."""
    order: List[int] = []
    seen = {0}
    stack: List[Tuple[int, bool]] = [(r >> 1, False) for r in roots]
    while stack:
        idx, expanded = stack.pop()
        if expanded:
            order.append(idx)
            continue
        if idx in seen:
            continue
        seen.add(idx)
        stack.append((idx, True))
        stack.append((mgr._lo[idx] >> 1, False))
        stack.append((mgr._hi[idx] >> 1, False))
    return order


def loads(text: str, mgr: Optional[BDD] = None) -> Tuple[BDD, List[int]]:
    """Load serialized functions; returns ``(manager, roots)``.

    When ``mgr`` is given, variables are matched by name (created as
    needed) and nodes rebuilt through ITE so any variable order works;
    otherwise a fresh manager with the dumped order is created.

    Every malformed input -- wrong field counts, non-integer tokens,
    dangling child/root references, stray lines -- raises
    :class:`ValueError` (never ``KeyError``/``IndexError``), so callers
    persisting dumps on disk (the artifact cache, the process pool) can
    treat any damage as "corrupt input" with one except clause.
    """
    lines = [l for l in text.splitlines() if l.strip()]
    if not lines or not lines[0].startswith(".bdd"):
        raise ValueError("not a BDD dump")
    var_names: List[str] = []
    node_lines: List[Tuple[int, int, int, int]] = []
    roots_spec: List[int] = []
    saw_roots = False
    section: Optional[str] = None
    for line in lines[1:]:
        if line.startswith(".vars"):
            var_names = line.split()[1:]
        elif line.startswith(".nodes"):
            section = "nodes"
        elif line.startswith(".roots"):
            saw_roots = True
            roots_spec = [_int_token(t, line) for t in line.split()[1:]]
        elif section == "nodes":
            parts = line.split()
            if len(parts) != 4:
                raise ValueError(
                    "corrupt BDD dump: expected 4 fields in node line %r"
                    % line)
            a, b, c, d = (_int_token(t, line) for t in parts)
            node_lines.append((a, b, c, d))
        else:
            raise ValueError("corrupt BDD dump: unexpected line %r" % line)
    if not saw_roots:
        # dumps always emits .roots last; its absence means truncation.
        raise ValueError("corrupt BDD dump: missing .roots section")
    if mgr is None:
        mgr = BDD()
    var_of: Dict[int, int] = {}
    for i, name in enumerate(var_names):
        try:
            var_of[i] = mgr.var_by_name(name)
        except KeyError:
            var_of[i] = mgr.new_var(name)
    built: Dict[int, int] = {0: ONE}

    def resolve(ref: int) -> int:
        return built[ref >> 1] ^ (ref & 1)

    for node_id, var_idx, lo, hi in node_lines:
        if (lo >> 1) not in built or (hi >> 1) not in built:
            raise ValueError("node %d references undumped children" % node_id)
        if var_idx not in var_of:
            raise ValueError("corrupt BDD dump: node %d uses undumped "
                             "variable index %d" % (node_id, var_idx))
        lo_ref, hi_ref = resolve(lo), resolve(hi)
        built[node_id] = mgr.ite(mgr.var_ref(var_of[var_idx]), hi_ref, lo_ref)
    for r in roots_spec:
        if (r >> 1) not in built:
            raise ValueError("corrupt BDD dump: root %d references an "
                             "undumped node" % r)
    roots = [resolve(r) for r in roots_spec]
    return mgr, roots


def _int_token(token: str, line: str) -> int:
    try:
        return int(token)
    except ValueError:
        raise ValueError("corrupt BDD dump: non-integer token %r in line %r"
                         % (token, line)) from None
