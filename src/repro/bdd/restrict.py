"""Don't-care minimization: the Coudert-Madre RESTRICT and CONSTRAIN operators.

The paper's Boolean AND/OR decompositions (Lemmas 1 and 2) obtain the
quotient ``Q`` by minimizing ``F`` against a care set derived from the
divisor; Section III-B states explicitly that the heuristic used is "the
RESTRICT operator of Coudert and Madre [25]".  Both operators guarantee

    ``restrict(f, c) & c == f & c``          (equality on the care set)

and tend to produce a BDD no larger than ``f``'s.  ``constrain`` (also known
as generalized cofactor) additionally satisfies useful algebraic identities
but may introduce variables outside ``supp(f)``; ``restrict`` quantifies
away such "sibling-substitution" variables and is the safer minimizer.
"""

from __future__ import annotations

from typing import Optional

from repro.bdd.manager import BDD, ONE, ZERO

_RESTRICT = 5
_CONSTRAIN = 6


def restrict(mgr: BDD, f: int, care: int) -> int:
    """Minimize ``f`` using ``~care`` as don't-care set (Coudert-Madre)."""
    if care == ZERO:
        # Everything is a don't care; any function works, pick a constant.
        return ZERO
    return _restrict(mgr, f, care)


def _restrict(mgr: BDD, f: int, c: int) -> int:
    if c == ONE or mgr.is_const(f):
        return f
    if f == c:
        return ONE
    if f == c ^ 1:
        return ZERO
    key = (_RESTRICT, f, c)
    cached = mgr._cache.lookup(key)
    if cached is not None:
        return cached
    lf, lc = mgr.level(f), mgr.level(c)
    if lc < lf:
        # The care-set's top variable does not appear (yet) in f: quantify
        # it out of the care set rather than re-introducing it into f.
        c0, c1 = mgr.children(c)
        if c0 == ZERO:
            r = _restrict(mgr, f, c1)
        elif c1 == ZERO:
            r = _restrict(mgr, f, c0)
        else:
            r = _restrict(mgr, f, mgr.or_(c0, c1))
    else:
        f0, f1 = mgr.children(f)
        if lf == lc:
            c0, c1 = mgr.children(c)
        else:
            c0, c1 = c, c
        if c0 == ZERO:
            r = _restrict(mgr, f1, c1)
        elif c1 == ZERO:
            r = _restrict(mgr, f0, c0)
        else:
            r = mgr.mk(mgr.var_of(f), _restrict(mgr, f0, c0), _restrict(mgr, f1, c1))
    mgr._cache.insert(key, r)
    return r


def constrain(mgr: BDD, f: int, c: int) -> int:
    """Generalized cofactor of ``f`` by ``c`` (Coudert-Madre constrain)."""
    if c == ZERO:
        return ZERO
    return _constrain(mgr, f, c)


def _constrain(mgr: BDD, f: int, c: int) -> int:
    if c == ONE or mgr.is_const(f):
        return f
    if f == c:
        return ONE
    if f == c ^ 1:
        return ZERO
    key = (_CONSTRAIN, f, c)
    cached = mgr._cache.lookup(key)
    if cached is not None:
        return cached
    lf, lc = mgr.level(f), mgr.level(c)
    top = min(lf, lc)
    var = mgr.var_at_level(top)
    f0, f1 = mgr.children(f) if lf == top else (f, f)
    c0, c1 = mgr.children(c) if lc == top else (c, c)
    if c0 == ZERO:
        r = _constrain(mgr, f1, c1)
    elif c1 == ZERO:
        r = _constrain(mgr, f0, c0)
    else:
        r = mgr.mk(var, _constrain(mgr, f0, c0), _constrain(mgr, f1, c1))
    mgr._cache.insert(key, r)
    return r


def minimize_with_dc(mgr: BDD, onset: int, dc: int) -> int:
    """Pick a small cover of the incompletely specified function (onset, dc).

    Returns a function ``g`` with ``onset <= g <= onset | dc`` (Theorem 2's
    interval), chosen heuristically to have a small BDD.  Tries ``restrict``
    of both polarities and the two interval endpoints, keeps the smallest
    result that satisfies the containment -- ``restrict`` itself always
    does, the check is a safety net.
    """
    from repro.bdd.traverse import node_count

    if dc == ZERO:
        return onset
    care = dc ^ 1
    upper = mgr.or_(onset, dc)
    candidates = [restrict(mgr, onset, care), restrict(mgr, upper, care),
                  onset, upper]
    best: Optional[int] = None
    best_size = 0
    for cand in candidates:
        if not mgr.leq(onset, cand):
            continue
        if not mgr.leq(cand, upper):
            continue
        size = node_count(mgr, cand)
        if best is None or size < best_size:
            best, best_size = cand, size
    assert best is not None
    return best
