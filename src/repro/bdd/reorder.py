"""Variable reordering: Rudell sifting plus cheap ordering heuristics.

The BDS flow reorders every local BDD before decomposition ("a BDD is first
subjected to a variable reordering [30] ... a means to achieve an initial
logic simplification", Section IV-C).  We implement:

* :func:`swap_adjacent` -- the in-place adjacent-level swap primitive.
  External refs stay valid because affected nodes are mutated in place;
  the proofs that no redundant or duplicate node can arise during a swap
  are in DESIGN.md Section 6 commentary (standard Rudell argument adapted
  to complement edges: new *then* children are always regular).
* :func:`sift` -- full sifting over live size measured from a root set.
* :func:`force_order` -- the FORCE (hypergraph barycenter) heuristic for a
  good *initial* order of a multi-rooted collection, used when building
  local BDDs for a partitioned network.
* :func:`random_order` -- for tests.
"""

from __future__ import annotations

import random
from typing import Dict, Iterable, List, Optional, Sequence, Set

from repro.bdd.manager import BDD, DEAD
from repro.bdd.traverse import live_nodes


def swap_adjacent(mgr: BDD, level: int,
                  live: Optional[Set[int]] = None) -> None:
    """Swap the variables at ``level`` and ``level + 1`` in place.

    Every external ref keeps denoting the same Boolean function.  When a
    ``live`` node-index set is given, dead nodes at the upper level are
    purged (unique-table entry removed, var tombstoned) instead of being
    swapped -- both a large speedup during sifting and the guard against
    resurrecting a dead node whose children have moved above it.
    """
    x = mgr._level2var[level]
    y = mgr._level2var[level + 1]
    var_arr, lo_arr, hi_arr = mgr._var, mgr._lo, mgr._hi
    unique = mgr._unique
    # Snapshot of x-labelled nodes; mk() during the loop may append new ones
    # which must not be processed.
    x_nodes: List[int] = []
    for i in mgr._nodes_by_var[x]:
        if var_arr[i] != x:
            continue
        if live is not None and i not in live:
            del unique[(x, lo_arr[i], hi_arr[i])]
            var_arr[i] = DEAD
            continue
        x_nodes.append(i)
    mgr._nodes_by_var[x] = x_nodes
    for n in x_nodes:
        f0, f1 = lo_arr[n], hi_arr[n]
        dep0 = var_arr[f0 >> 1] == y
        dep1 = var_arr[f1 >> 1] == y
        if not (dep0 or dep1):
            continue
        if dep0:
            p = f0 & 1
            f00, f01 = lo_arr[f0 >> 1] ^ p, hi_arr[f0 >> 1] ^ p
        else:
            f00 = f01 = f0
        if dep1:
            p = f1 & 1
            f10, f11 = lo_arr[f1 >> 1] ^ p, hi_arr[f1 >> 1] ^ p
        else:
            f10 = f11 = f1
        new_lo = mgr.mk(x, f00, f10)
        new_hi = mgr.mk(x, f01, f11)
        # By the swap invariants new_hi is regular and (y, new_lo, new_hi)
        # collides with no existing node; mutate n in place.
        assert not (new_hi & 1), "swap produced a complemented then-edge"
        del unique[(x, f0, f1)]
        var_arr[n] = y
        lo_arr[n] = new_lo
        hi_arr[n] = new_hi
        unique[(y, new_lo, new_hi)] = n
        mgr._nodes_by_var[y].append(n)
    # Nodes that kept var x remain valid; stale entries in _nodes_by_var
    # are filtered lazily.  Finally swap the level maps.
    mgr._level2var[level], mgr._level2var[level + 1] = y, x
    mgr._var2level[x], mgr._var2level[y] = level + 1, level
    # Cached operator results still denote the same functions, but cofactor
    # caches keyed by (f, var) would now disagree with structural
    # expectations in long-lived flows; drop the computed table for safety.
    mgr._cache.clear()


def move_var_to_level(mgr: BDD, var: int, target: int,
                      roots: Optional[Sequence[int]] = None) -> None:
    """Move one variable to ``target`` level via adjacent swaps."""
    cur = mgr._var2level[var]
    while cur < target:
        live = live_nodes(mgr, roots) if roots is not None else None
        swap_adjacent(mgr, cur, live)
        cur += 1
    while cur > target:
        live = live_nodes(mgr, roots) if roots is not None else None
        swap_adjacent(mgr, cur - 1, live)
        cur -= 1


def collect_garbage(mgr: BDD, roots: Sequence[int]) -> int:
    """Purge every node unreachable from ``roots`` (plus any roots
    registered on the manager): delegate to the manager's mark-and-sweep
    collector, which tombstones dead slots onto the free list, compacts the
    unique table and purges ``_nodes_by_var`` of stale indices.

    Returns the number of nodes purged.  All refs other than those
    reachable from the root set become invalid.
    """
    return mgr.collect_garbage(extra_roots=roots)


def sift(mgr: BDD, roots: Sequence[int], max_vars: int = 0,
         max_growth: float = 1.5, size_limit: int = 200000) -> int:
    """Rudell sifting: move each variable to its locally best level.

    ``roots`` defines liveness; size is the shared live node count of the
    root set.  Returns the final live size.  ``max_vars`` limits sifting to
    the N variables with most nodes (0 = all).

    All refs not reachable from ``roots`` are invalidated (dead nodes are
    purged so that in-place reordering stays canonical).
    """
    state: Dict[str, Set[int]] = {"live": live_nodes(mgr, roots)}

    def live_size() -> int:
        state["live"] = live_nodes(mgr, roots)
        n = len(state["live"]) - 1
        mgr.perf.observe_live(n)
        return n

    def do_swap(lvl: int) -> None:
        swap_adjacent(mgr, lvl, state["live"])

    size = live_size()
    if size > size_limit:
        return size
    # Count live nodes per variable to choose sifting order.
    per_var: Dict[int, int] = {}
    for idx in state["live"]:
        if idx == 0:
            continue
        per_var[mgr._var[idx]] = per_var.get(mgr._var[idx], 0) + 1
    candidates = sorted(per_var, key=lambda v: -per_var[v])
    if max_vars:
        candidates = candidates[:max_vars]
    nlevels = mgr.num_vars
    for var in candidates:
        start = mgr._var2level[var]
        best_level, best_size = start, live_size()
        limit = int(best_size * max_growth) + 2
        # Sift toward the bottom first, then sweep to the top.
        cur = start
        while cur < nlevels - 1:
            do_swap(cur)
            cur += 1
            s = live_size()
            if s < best_size:
                best_size, best_level = s, cur
            if s > limit:
                break
        while cur > 0:
            do_swap(cur - 1)
            cur -= 1
            s = live_size()
            if s < best_size:
                best_size, best_level = s, cur
            if s > limit and cur < start:
                break
        move_var_to_level(mgr, var, best_level, roots=roots)
        live_size()
    collect_garbage(mgr, roots)
    return live_size()


def window3(mgr: BDD, roots: Sequence[int], passes: int = 2) -> int:
    """Window-permutation reordering: exhaustively permute every window of
    three adjacent levels, keeping the best live size.  Cheaper than full
    sifting and often a good finisher after it.  Returns the final size.

    Like :func:`sift`, refs not reachable from ``roots`` are invalidated.
    """
    # The six permutations of (0,1,2) as adjacent-swap programs relative
    # to the current window state; each entry appends one swap (by window
    # offset) forming the cyclic Steinhaus sequence 012 -> 102 -> 120 ->
    # 210 -> 201 -> 021 -> (012).
    program = [0, 1, 0, 1, 0]

    def live_size() -> int:
        return len(live_nodes(mgr, roots)) - 1

    def do_swap(level: int) -> None:
        swap_adjacent(mgr, level, live_nodes(mgr, roots))

    size = live_size()
    for _ in range(passes):
        improved = False
        for base in range(mgr.num_vars - 2):
            best_size = live_size()
            best_state = 0
            for state, offset in enumerate(program, start=1):
                do_swap(base + offset)
                s = live_size()
                if s < best_size:
                    best_size, best_state = s, state
            # One more swap returns to the original permutation (state 0);
            # then replay to the best state.
            do_swap(base + 1)
            for offset in program[:best_state]:
                do_swap(base + offset)
            if best_size < size:
                size = best_size
                improved = True
        if not improved:
            break
    collect_garbage(mgr, roots)
    return live_size()


def random_order(mgr: BDD, rng: random.Random) -> None:
    """Shuffle the variable order in place (testing utility)."""
    levels = list(range(mgr.num_vars))
    rng.shuffle(levels)
    for target, var in enumerate([mgr._level2var[l] for l in levels]):
        # Selection-sort style: place each var at its target level.
        move_var_to_level(mgr, var, target)


def force_order(var_groups: Iterable[Sequence[int]], num_vars: int,
                iterations: int = 20) -> List[int]:
    """FORCE ordering heuristic over a hypergraph of variable groups.

    ``var_groups`` are hyperedges (e.g. the supports of each output or each
    network node).  Returns a variable order (list of var ids, top first)
    that tends to keep tightly connected variables adjacent -- a cheap,
    effective initial order for multi-rooted BDD construction.
    """
    groups = [list(g) for g in var_groups if g]
    position = {v: float(i) for i, v in enumerate(range(num_vars))}
    for _ in range(iterations):
        centers: List[float] = []
        for g in groups:
            centers.append(sum(position[v] for v in g) / len(g))
        pull: Dict[int, List[float]] = {}
        for g, c in zip(groups, centers):
            for v in g:
                pull.setdefault(v, []).append(c)
        new_pos: Dict[int, float] = {}
        for v in range(num_vars):
            if v in pull:
                new_pos[v] = sum(pull[v]) / len(pull[v])
            else:
                new_pos[v] = position[v]
        ranked = sorted(range(num_vars), key=lambda v: new_pos[v])
        position = {v: float(i) for i, v in enumerate(ranked)}
    return sorted(range(num_vars), key=lambda v: position[v])
