"""Variable reordering: incremental Rudell sifting plus cheap heuristics.

The BDS flow reorders every local BDD before decomposition ("a BDD is first
subjected to a variable reordering [30] ... a means to achieve an initial
logic simplification", Section IV-C).  We implement:

* :func:`swap_adjacent` -- the in-place adjacent-level swap primitive.
  External refs stay valid because affected nodes are mutated in place;
  the proofs that no redundant or duplicate node can arise during a swap
  are in DESIGN.md Section 6 commentary (standard Rudell argument adapted
  to complement edges: new *then* children are always regular).
* :func:`sift` -- full sifting over live size measured from a root set.
* :func:`window3` -- exhaustive window-permutation reordering.
* :func:`force_order` -- the FORCE (hypergraph barycenter) heuristic for a
  good *initial* order of a multi-rooted collection, used when building
  local BDDs for a partitioned network.
* :func:`random_order` -- for tests.

Sifting and window passes run inside a manager *reorder session*
(:meth:`repro.bdd.manager.BDD.begin_reorder`): an opening mark-and-sweep
makes every allocated node reachable from the root set, after which the
manager's incrementally maintained reference counts and per-variable node
counters keep the live size exact after every swap -- the inner loops
never re-traverse from the roots (``perf.live_traversals`` pins this in
tests).  On top of the O(1) size reads, sifting uses the session's
variable *interaction matrix* to replace swaps between independent
variables with O(1) level-map transpositions, and a *lower-bound prune*
to abandon a variable's sweep once the incremental size proves the sweep
cannot beat the best position found so far (see docs/PERFORMANCE.md §7).
"""

from __future__ import annotations

import random
import time
from typing import Callable, Dict, Iterable, List, Optional, Sequence

from repro.bdd.manager import BDD, DEAD


def swap_adjacent(mgr: BDD, level: int) -> None:
    """Swap the variables at ``level`` and ``level + 1`` in place.

    Every external ref keeps denoting the same Boolean function.  The
    manager's per-variable node counters and reference counts are updated
    in O(touched nodes).  Inside a reorder session nodes whose reference
    count drops to zero are reclaimed immediately (their slots go back on
    the free list), so the session's live-size reads stay exact; outside
    a session nothing is reclaimed (callers may hold unregistered refs)
    and only the order-dependent computed-table entries are invalidated.
    """
    x = mgr._level2var[level]
    y = mgr._level2var[level + 1]
    in_session = mgr._reorder_session is not None
    counts = mgr._var_counts
    perf = mgr.perf
    perf.reorder_swaps += 1
    if counts[x] and counts[y]:
        # One pass over the x bucket does both jobs: compact away stale
        # indices (nodes relabelled by earlier swaps) and rewrite the
        # y-dependent nodes.  Fresh x-children allocated mid-loop land on
        # the same bucket and are visited -- their children lie strictly
        # below y, so the dependence test skips them into ``keep``.
        var_arr, lo_arr, hi_arr = mgr._var, mgr._lo, mgr._hi
        ref_arr = mgr._ref
        unique = mgr._unique
        unique_get = unique.get
        free = mgr._free
        bucket = mgr._nodes_by_var[x]
        y_bucket = mgr._nodes_by_var[y]
        keep: List[int] = []
        keep_push = keep.append
        # Zero-reference nodes are collected here and reclaimed after the
        # rewrite loop: a node with no references left cannot be reached
        # by any still-unprocessed x-node, and its unique-table key (all
        # children below the old y level) can never collide with a
        # relabelled node's new key (which always has an x child).
        dead: List[int] = []
        i = 0
        while i < len(bucket):
            n = bucket[i]
            i += 1
            if var_arr[n] != x:
                continue
            f0 = lo_arr[n]
            f1 = hi_arr[n]
            i0 = f0 >> 1
            i1 = f1 >> 1
            dep0 = var_arr[i0] == y
            dep1 = var_arr[i1] == y
            if not (dep0 or dep1):
                keep_push(n)
                continue
            if dep0:
                p = f0 & 1
                f00 = lo_arr[i0] ^ p
                f01 = hi_arr[i0] ^ p
            else:
                f00 = f01 = f0
            if dep1:
                # Stored then-edges are never complemented: f1 is regular.
                f10 = lo_arr[i1]
                f11 = hi_arr[i1]
            else:
                f10 = f11 = f1
            # new_lo = mk(x, f00, f10), allocation inlined for the hot loop.
            if f00 == f10:
                new_lo = f00
            else:
                flip = f10 & 1
                if flip:
                    key = (x, f00 ^ 1, f10 ^ 1)
                else:
                    key = (x, f00, f10)
                j = unique_get(key)
                if j is None:
                    if free:
                        j = free.pop()
                        var_arr[j] = x
                        lo_arr[j] = key[1]
                        hi_arr[j] = key[2]
                        ref_arr[j] = 0
                        perf.nodes_reused += 1
                    else:
                        j = len(var_arr)
                        var_arr.append(x)
                        lo_arr.append(key[1])
                        hi_arr.append(key[2])
                        ref_arr.append(0)
                        if j + 1 > perf.peak_allocated_nodes:
                            perf.peak_allocated_nodes = j + 1
                    perf.nodes_allocated += 1
                    unique[key] = j
                    bucket.append(j)
                    ref_arr[key[1] >> 1] += 1
                    ref_arr[key[2] >> 1] += 1
                    counts[x] += 1
                new_lo = (j << 1) | flip
            # new_hi = mk(x, f01, f11): f11 is regular in both branches, so
            # no complement normalization is ever needed here.
            if f01 == f11:
                new_hi = f01
            else:
                key = (x, f01, f11)
                j = unique_get(key)
                if j is None:
                    if free:
                        j = free.pop()
                        var_arr[j] = x
                        lo_arr[j] = f01
                        hi_arr[j] = f11
                        ref_arr[j] = 0
                        perf.nodes_reused += 1
                    else:
                        j = len(var_arr)
                        var_arr.append(x)
                        lo_arr.append(f01)
                        hi_arr.append(f11)
                        ref_arr.append(0)
                        if j + 1 > perf.peak_allocated_nodes:
                            perf.peak_allocated_nodes = j + 1
                    perf.nodes_allocated += 1
                    unique[key] = j
                    bucket.append(j)
                    ref_arr[f01 >> 1] += 1
                    ref_arr[f11 >> 1] += 1
                    counts[x] += 1
                new_hi = j << 1
            # By the swap invariants new_hi is regular and (y, new_lo,
            # new_hi) collides with no existing node; mutate n in place.
            del unique[(x, f0, f1)]
            var_arr[n] = y
            lo_arr[n] = new_lo
            hi_arr[n] = new_hi
            unique[(y, new_lo, new_hi)] = n
            y_bucket.append(n)
            counts[x] -= 1
            counts[y] += 1
            # n's outgoing references moved from (f0, f1) to (new_lo, new_hi).
            ref_arr[new_lo >> 1] += 1
            ref_arr[new_hi >> 1] += 1
            ref_arr[i0] -= 1
            ref_arr[i1] -= 1
            if in_session:
                if i0 and not ref_arr[i0]:
                    dead.append(i0)
                if i1 and i1 != i0 and not ref_arr[i1]:
                    dead.append(i1)
        mgr._nodes_by_var[x] = keep
        if dead:
            # Eager in-session reclamation (with cascade): every allocated
            # node is reachable from the pinned roots, so zero references
            # really means unreachable.  Slots go back on the free list.
            while dead:
                idx = dead.pop()
                v = var_arr[idx]
                del unique[(v, lo_arr[idx], hi_arr[idx])]
                var_arr[idx] = DEAD
                counts[v] -= 1
                free.append(idx)
                c0 = lo_arr[idx] >> 1
                c1 = hi_arr[idx] >> 1
                ref_arr[c0] -= 1
                ref_arr[c1] -= 1
                if c0 and not ref_arr[c0]:
                    dead.append(c0)
                if c1 and c1 != c0 and not ref_arr[c1]:
                    dead.append(c1)
    # Nodes that kept var x remain valid; stale entries in _nodes_by_var
    # are filtered lazily.  Finally swap the level maps.
    mgr._level2var[level], mgr._level2var[level + 1] = y, x
    mgr._var2level[x], mgr._var2level[y] = level + 1, level
    if not in_session:
        # Cached operator results still denote the same functions (keys
        # and results are canonical refs, which swaps preserve); only
        # entries whose keys encode the order itself (level sets) go
        # stale.  Scoped invalidation drops exactly those.  In-session
        # swaps skip even this: the session's opening sweep already
        # invalidated the table and no operator runs mid-session.
        mgr._cache.drop_order_dependent()


def _swap_levels_only(mgr: BDD, level: int) -> None:
    """O(1) transposition of two adjacent levels whose variables do not
    interact: no node at the upper level can reach the lower variable, so
    swapping is a pure permutation-map update."""
    x = mgr._level2var[level]
    y = mgr._level2var[level + 1]
    mgr._level2var[level], mgr._level2var[level + 1] = y, x
    mgr._var2level[x], mgr._var2level[y] = level + 1, level
    mgr.perf.reorder_swaps_skipped += 1


def _session_swap(mgr: BDD, level: int) -> None:
    """Swap two adjacent levels inside a session, skipping the node work
    when the interaction matrix proves the variables independent."""
    if mgr.vars_interact(mgr._level2var[level], mgr._level2var[level + 1]):
        swap_adjacent(mgr, level)
    else:
        _swap_levels_only(mgr, level)


def move_var_to_level(mgr: BDD, var: int, target: int,
                      roots: Optional[Sequence[int]] = None) -> None:
    """Move one variable to ``target`` level via adjacent swaps.

    Inside an active reorder session (or when ``roots`` is given, in a
    private one) the per-swap bookkeeping is fully incremental: dead
    nodes are reclaimed as swaps orphan them and non-interacting swaps
    collapse to O(1) transpositions.  With neither a session nor
    ``roots`` the swaps run standalone and reclaim nothing (any held ref
    stays valid).
    """
    if mgr.reordering:
        _move_in_session(mgr, var, target)
    elif roots is not None:
        mgr.begin_reorder(roots)
        try:
            _move_in_session(mgr, var, target)
        finally:
            mgr.end_reorder()
    else:
        cur = mgr._var2level[var]
        while cur < target:
            swap_adjacent(mgr, cur)
            cur += 1
        while cur > target:
            swap_adjacent(mgr, cur - 1)
            cur -= 1


def _move_in_session(mgr: BDD, var: int, target: int) -> None:
    cur = mgr._var2level[var]
    while cur < target:
        _session_swap(mgr, cur)
        cur += 1
    while cur > target:
        _session_swap(mgr, cur - 1)
        cur -= 1


def collect_garbage(mgr: BDD, roots: Sequence[int]) -> int:
    """Purge every node unreachable from ``roots`` (plus any roots
    registered on the manager): delegate to the manager's mark-and-sweep
    collector, which tombstones dead slots onto the free list, compacts the
    unique table and purges ``_nodes_by_var`` of stale indices.

    Returns the number of nodes purged.  All refs other than those
    reachable from the root set become invalid.
    """
    return mgr.collect_garbage(extra_roots=roots)


def _interacting_span(mgr: BDD, imask: int, levels: Iterable[int]) -> int:
    """Total live nodes at ``levels`` whose variables interact with the
    sifted variable (interaction bitmask ``imask``; -1 means "all") --
    the only nodes a continued sweep of that variable can remove."""
    counts = mgr._var_counts
    l2v = mgr._level2var
    total = 0
    for lvl in levels:
        w = l2v[lvl]
        if (imask >> w) & 1:
            total += counts[w]
    return total


def sift(mgr: BDD, roots: Sequence[int], max_vars: int = 0,
         max_growth: float = 1.5, size_limit: int = 200000,
         interactions: bool = True, prune: bool = True) -> int:
    """Rudell sifting: move each variable to its locally best level.

    ``roots`` defines liveness; size is the shared live node count of the
    root set (plus any registered roots, which stay protected).  Returns
    the final live size.  ``max_vars`` limits sifting to the N variables
    with most nodes (0 = all).

    All refs not reachable from ``roots`` (or registered roots) are
    invalidated by the session's opening sweep.  ``interactions`` and
    ``prune`` exist for differential testing: disabling them changes the
    work done, never the resulting order or size.
    """
    t0 = time.perf_counter()
    perf = mgr.perf
    size = mgr.begin_reorder(roots, interactions=interactions)
    perf.reorder_passes += 1
    perf.reorder_size_before += size
    peak = size
    try:
        if size > size_limit:
            return size
        counts = mgr._var_counts
        candidates = [v for v in range(mgr.num_vars) if counts[v] > 0]
        candidates.sort(key=lambda v: -counts[v])
        if max_vars:
            candidates = candidates[:max_vars]
        nlevels = mgr.num_vars
        masks = mgr._reorder_session[1] if mgr._reorder_session else None
        l2v = mgr._level2var
        v2l = mgr._var2level
        var_arr = mgr._var
        free = mgr._free
        for var in candidates:
            if counts[var] == 0:
                continue
            # -1 is the all-ones mask: without an interaction matrix every
            # pair of variables is treated as interacting.
            imask = masks[var] if masks is not None else -1
            start = v2l[var]
            best_level, best_size = start, size
            limit = int(best_size * max_growth) + 2
            cur = start
            # Sift toward the bottom first, then sweep to the top.  The
            # lower bound: levels above `cur` are frozen for the rest of
            # this direction, non-interacting levels below never change,
            # so no future position can size below
            #   size - counts[var] - (interacting nodes ahead) + 1.
            ahead = _interacting_span(mgr, imask, range(cur + 1, nlevels))
            while cur < nlevels - 1:
                if prune and size - counts[var] - ahead + 1 >= best_size:
                    break
                w = l2v[cur + 1]
                if (imask >> w) & 1:
                    ahead -= counts[w]
                    swap_adjacent(mgr, cur)
                    size = len(var_arr) - 1 - len(free)
                else:
                    l2v[cur], l2v[cur + 1] = w, var
                    v2l[var], v2l[w] = cur + 1, cur
                    perf.reorder_swaps_skipped += 1
                cur += 1
                if size < best_size:
                    best_size, best_level = size, cur
                if size > peak:
                    peak = size
                if size > limit:
                    break
            ahead = _interacting_span(mgr, imask, range(cur))
            while cur > 0:
                if prune and size - counts[var] - ahead + 1 >= best_size:
                    break
                w = l2v[cur - 1]
                if (imask >> w) & 1:
                    ahead -= counts[w]
                    swap_adjacent(mgr, cur - 1)
                    size = len(var_arr) - 1 - len(free)
                else:
                    l2v[cur - 1], l2v[cur] = var, w
                    v2l[var], v2l[w] = cur - 1, cur
                    perf.reorder_swaps_skipped += 1
                cur -= 1
                if size < best_size:
                    best_size, best_level = size, cur
                if size > peak:
                    peak = size
                if size > limit and cur < start:
                    break
            _move_in_session(mgr, var, best_level)
            size = len(var_arr) - 1 - len(free)
        return size
    finally:
        perf.observe_live(peak)
        perf.reorder_size_after += mgr.num_nodes_live
        perf.reorder_time_s += time.perf_counter() - t0
        mgr.end_reorder()


def window3(mgr: BDD, roots: Sequence[int], passes: int = 2) -> int:
    """Window-permutation reordering: exhaustively permute every window of
    three adjacent levels, keeping the best live size.  Cheaper than full
    sifting and often a good finisher after it.  Returns the final size.

    Like :func:`sift`, refs not reachable from ``roots`` are invalidated.
    """
    # The six permutations of (0,1,2) as adjacent-swap programs relative
    # to the current window state; each entry appends one swap (by window
    # offset) forming the cyclic Steinhaus sequence 012 -> 102 -> 120 ->
    # 210 -> 201 -> 021 -> (012).
    program = [0, 1, 0, 1, 0]
    t0 = time.perf_counter()
    perf = mgr.perf
    size = mgr.begin_reorder(roots)
    perf.reorder_passes += 1
    perf.reorder_size_before += size
    try:
        for _ in range(passes):
            improved = False
            for base in range(mgr.num_vars - 2):
                best_size = mgr.num_nodes_live
                best_state = 0
                for state, offset in enumerate(program, start=1):
                    _session_swap(mgr, base + offset)
                    s = mgr.num_nodes_live
                    if s < best_size:
                        best_size, best_state = s, state
                # One more swap returns to the original permutation
                # (state 0); then replay to the best state.
                _session_swap(mgr, base + 1)
                for offset in program[:best_state]:
                    _session_swap(mgr, base + offset)
                if best_size < size:
                    size = best_size
                    improved = True
            if not improved:
                break
        return mgr.num_nodes_live
    finally:
        perf.reorder_size_after += mgr.num_nodes_live
        perf.reorder_time_s += time.perf_counter() - t0
        mgr.end_reorder()


def random_order(mgr: BDD, rng: random.Random) -> None:
    """Shuffle the variable order in place (testing utility).

    After the call, the variable previously at level ``levels[i]`` of the
    shuffle sits at level ``i``.  Placement is selection-sort style: when
    var ``i`` is placed, vars ``0..i-1`` already occupy the top ``i``
    levels, so the upward move never disturbs placed variables (covered
    by the round-trip property test in test_bdd_reorder_incremental).
    """
    levels = list(range(mgr.num_vars))
    rng.shuffle(levels)
    for target, var in enumerate([mgr._level2var[l] for l in levels]):
        move_var_to_level(mgr, var, target)


#: Reorder methods :meth:`repro.bdd.manager.BDD.enable_autoreorder` can
#: fire at growth safe points.  Each takes (manager, roots) where roots
#: are the in-flight refs the triggering safe point declared (registered
#: roots are always protected in addition).
AUTOREORDER_METHODS: Dict[str, Callable[[BDD, List[int]], int]] = {
    "sift": lambda mgr, roots: sift(mgr, roots),
    "window3": lambda mgr, roots: window3(mgr, roots, passes=1),
}


def force_order(var_groups: Iterable[Sequence[int]], num_vars: int,
                iterations: int = 20) -> List[int]:
    """FORCE ordering heuristic over a hypergraph of variable groups.

    ``var_groups`` are hyperedges (e.g. the supports of each output or each
    network node).  Returns a variable order (list of var ids, top first)
    that tends to keep tightly connected variables adjacent -- a cheap,
    effective initial order for multi-rooted BDD construction.
    """
    groups = [list(g) for g in var_groups if g]
    position = {v: float(i) for i, v in enumerate(range(num_vars))}
    for _ in range(iterations):
        centers: List[float] = []
        for g in groups:
            centers.append(sum(position[v] for v in g) / len(g))
        pull: Dict[int, List[float]] = {}
        for g, c in zip(groups, centers):
            for v in g:
                pull.setdefault(v, []).append(c)
        new_pos: Dict[int, float] = {}
        for v in range(num_vars):
            if v in pull:
                new_pos[v] = sum(pull[v]) / len(pull[v])
            else:
                new_pos[v] = position[v]
        ranked = sorted(range(num_vars), key=lambda v: new_pos[v])
        position = {v: float(i) for i, v in enumerate(ranked)}
    return sorted(range(num_vars), key=lambda v: position[v])
