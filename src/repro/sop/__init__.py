"""Cube and sum-of-products (SOP) algebra.

This is the "predominant cube representation" the paper's introduction
contrasts BDDs against -- it is the substrate of the SIS-like algebraic
baseline (``repro.sis``) and of BLIF node functions.

A *literal* is an int: ``2*var`` for the positive literal of ``var`` and
``2*var + 1`` for the negative literal.  A *cube* is a ``frozenset`` of
literals (a product term); the empty cube is the tautology cube.  A *cover*
is a list of cubes (their disjunction).
"""

from repro.sop.cube import (
    POS,
    NEG,
    cube_and,
    cube_contains,
    cube_cofactor,
    cube_from_pairs,
    cube_vars,
    lit,
    lit_var,
    lit_positive,
    lit_negate,
)
from repro.sop.cover import (
    complement,
    cover_and,
    cover_cofactor,
    cover_contains_cube,
    cover_eval,
    cover_or,
    cover_support,
    is_tautology,
    literal_count,
    remove_contained,
)
from repro.sop.minimize import simplify_cover, irredundant, expand

__all__ = [
    "POS", "NEG", "lit", "lit_var", "lit_positive", "lit_negate",
    "cube_and", "cube_contains", "cube_cofactor", "cube_from_pairs",
    "cube_vars",
    "complement", "cover_and", "cover_cofactor", "cover_contains_cube",
    "cover_eval", "cover_or", "cover_support", "is_tautology",
    "literal_count", "remove_contained",
    "simplify_cover", "irredundant", "expand",
]
