"""Cube primitives: literal encoding and single-cube operations."""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Optional, Set, Tuple

Cube = FrozenSet[int]

POS = 0
NEG = 1


def lit(var: int, positive: bool = True) -> int:
    """Encode a literal of ``var``."""
    return 2 * var + (0 if positive else 1)


def lit_var(literal: int) -> int:
    return literal >> 1


def lit_positive(literal: int) -> bool:
    return not (literal & 1)


def lit_negate(literal: int) -> int:
    return literal ^ 1


def cube_from_pairs(pairs: Iterable[Tuple[int, bool]]) -> Cube:
    """Build a cube from (var, positive) pairs."""
    return frozenset(lit(v, p) for v, p in pairs)


def cube_vars(cube: Cube) -> Set[int]:
    return {l >> 1 for l in cube}


def cube_and(a: Cube, b: Cube) -> Optional[Cube]:
    """Product of two cubes; ``None`` when they contradict (empty cube)."""
    out = a | b
    for l in out:
        if (l ^ 1) in out:
            return None
    return out


def cube_contains(big: Cube, small: Cube) -> bool:
    """True iff the minterm set of ``big`` contains that of ``small``.

    A cube with *fewer* literals covers more minterms, so containment is
    literal-set inclusion in reverse.
    """
    return big <= small


def cube_cofactor(cube: Cube, literal: int) -> Optional[Cube]:
    """Cofactor of a cube with respect to a literal.

    Returns ``None`` when the cube lies entirely outside the literal's
    halfspace (the cofactor is empty), otherwise the cube with the literal's
    variable dropped.
    """
    if (literal ^ 1) in cube:
        return None
    if literal in cube:
        return cube - {literal}
    return cube


def cube_eval(cube: Cube, assignment: Dict[int, bool]) -> bool:
    """Evaluate a cube under a complete assignment."""
    for l in cube:
        value = assignment[l >> 1]
        if (l & 1) == 0:
            if not value:
                return False
        else:
            if value:
                return False
    return True


def cube_distance(a: Cube, b: Cube) -> int:
    """Number of variables on which the cubes have opposing literals."""
    return sum(1 for l in a if (l ^ 1) in b)
