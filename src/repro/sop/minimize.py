"""Two-level minimization: an espresso-style simplify pass.

The SIS baseline's per-node ``simplify`` needs a cube-domain minimizer (the
real SIS calls espresso).  We implement the classic EXPAND -> IRREDUNDANT
loop (one REDUCE-free pass by default, which is what ``simplify`` in
``script.rugged`` effectively costs) on completely specified functions,
with an optional don't-care cover.
"""

from __future__ import annotations

from typing import Optional

from repro.sop.cover import (
    ComplementTooLarge,
    Cover,
    complement,
    cover_cofactor_cube,
    cover_contains_cube,
    is_tautology,
    literal_count,
    remove_contained,
)
from repro.sop.cube import Cube

__all__ = ["expand", "irredundant", "reduce_cubes", "simplify_cover",
           "espresso_minimize"]


def expand(cover: Cover, offset: Cover) -> Cover:
    """Expand each cube against the offset (make cubes prime-ish).

    A literal can be dropped from a cube if the enlarged cube still avoids
    the offset.  Greedy single-pass, biggest cubes first.
    """
    expanded: Cover = []
    for cube in sorted(cover, key=len):
        cur = set(cube)
        for literal in sorted(cube):
            trial = frozenset(cur - {literal})
            if not _intersects(trial, offset):
                cur.discard(literal)
        expanded.append(frozenset(cur))
    return remove_contained(expanded)


def _intersects(cube: Cube, offset: Cover) -> bool:
    """Does the cube contain any offset minterm?"""
    for off in offset:
        clash = False
        for l in off:
            if (l ^ 1) in cube:
                clash = True
                break
        if not clash:
            return True
    return False


def irredundant(cover: Cover, dc: Optional[Cover] = None) -> Cover:
    """Remove cubes covered by the rest of the cover (plus don't-cares)."""
    dc = dc or []
    out = list(remove_contained(cover))
    i = 0
    while i < len(out):
        rest = out[:i] + out[i + 1:] + dc
        if cover_contains_cube(rest, out[i]):
            out.pop(i)
        else:
            i += 1
    return out


def reduce_cubes(cover: Cover, dc: Optional[Cover] = None,
                 complement_limit: int = 2000) -> Cover:
    """REDUCE: shrink each cube to the supercube of its essential part.

    A cube's essential part is the set of its minterms covered by no other
    cube (nor by the don't-care set); replacing the cube by the smallest
    cube containing that part keeps the cover's function but unlocks
    better expansions on the next espresso iteration.
    """
    dc = dc or []
    out = list(cover)
    for i in range(len(out)):
        cube = out[i]
        rest = out[:i] + out[i + 1:] + dc
        rest_cof = cover_cofactor_cube(rest, cube)
        if is_tautology(rest_cof):
            continue  # fully redundant; irredundant's job, not reduce's
        try:
            essential = complement(rest_cof, limit=complement_limit)
        except ComplementTooLarge:
            continue
        if not essential:
            continue
        supercube = set(essential[0])
        for other in essential[1:]:
            supercube &= other
        out[i] = frozenset(cube | supercube)
    return out


def espresso_minimize(cover: Cover, dc: Optional[Cover] = None,
                      max_iterations: int = 5) -> Cover:
    """The full EXPAND -> IRREDUNDANT -> REDUCE loop, iterated to a
    fixpoint of the literal count (bounded by ``max_iterations``)."""
    dc = dc or []
    if not cover:
        return []
    if any(not cube for cube in cover):
        return [frozenset()]
    best = simplify_cover(cover, dc)
    for _ in range(max_iterations):
        reduced = reduce_cubes(best, dc)
        candidate = simplify_cover(reduced, dc)
        if literal_count(candidate) >= literal_count(best):
            break
        best = candidate
    return best


def simplify_cover(cover: Cover, dc: Optional[Cover] = None) -> Cover:
    """One espresso-like pass: complement -> expand -> irredundant.

    Keeps the result only when it does not increase the literal count.
    """
    dc = dc or []
    if not cover:
        return []
    if any(not cube for cube in cover):
        return [frozenset()]
    base = remove_contained(cover)
    try:
        # Bounded offset computation: when the complement would explode
        # (espresso's classic worst case) fall back to the expansion-free
        # pass, exactly like simplify's "nocomp" mode in script.rugged.
        offset = complement(base + dc, limit=20 * len(base) + 200)
    except ComplementTooLarge:
        return irredundant(base, dc)
    improved = irredundant(expand(base, offset), dc)
    if literal_count(improved) <= literal_count(base):
        return improved
    return base
