"""Cover-level operations: tautology, complement, containment, cofactors.

Tautology checking and complementation use the classic unate recursive
paradigm (Brayton et al. [1]): pick the most-binate variable, recurse on the
two cofactors, with unate-cover shortcuts at the leaves.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set

from repro.sop.cube import (
    Cube,
    cube_and,
    cube_cofactor,
    cube_contains,
    cube_eval,
    lit,
)

Cover = List[Cube]

TAUTOLOGY_CUBE: Cube = frozenset()


def cover_support(cover: Cover) -> Set[int]:
    out: Set[int] = set()
    for cube in cover:
        for l in cube:
            out.add(l >> 1)
    return out


def literal_count(cover: Cover) -> int:
    """Total literal count -- the SIS cost metric for covers."""
    return sum(len(cube) for cube in cover)


def cover_eval(cover: Cover, assignment: Dict[int, bool]) -> bool:
    return any(cube_eval(cube, assignment) for cube in cover)


def cover_cofactor(cover: Cover, literal: int) -> Cover:
    """Cofactor of a cover with respect to a literal (Shannon)."""
    out: Cover = []
    for cube in cover:
        c = cube_cofactor(cube, literal)
        if c is not None:
            out.append(c)
            if not c:
                return [TAUTOLOGY_CUBE]
    return out


def cover_cofactor_cube(cover: Cover, cube: Cube) -> Cover:
    """Cofactor of a cover with respect to every literal of ``cube``."""
    out = cover
    for literal in cube:
        out = cover_cofactor(out, literal)
    return out


def remove_contained(cover: Cover) -> Cover:
    """Drop cubes single-cube-contained in another cube of the cover."""
    kept: Cover = []
    # Sort by literal count so containers come first.
    for cube in sorted(set(cover), key=len):
        if not any(cube_contains(k, cube) for k in kept):
            kept.append(cube)
    return kept


def _most_binate_var(cover: Cover) -> Optional[int]:
    """Variable appearing in both polarities in the most cubes; None if the
    cover is unate."""
    pos: Dict[int, int] = {}
    neg: Dict[int, int] = {}
    for cube in cover:
        for l in cube:
            (neg if l & 1 else pos)[l >> 1] = (neg if l & 1 else pos).get(l >> 1, 0) + 1
    best, best_score = None, -1
    for v in sorted(set(pos) & set(neg)):
        score = pos[v] + neg[v]
        if score > best_score:
            best, best_score = v, score
    if best is not None:
        return best
    # Unate cover: split on the most frequent variable if a split is ever
    # requested (callers normally hit the unate shortcut first).
    counts: Dict[int, int] = {}
    for cube in cover:
        for l in cube:
            counts[l >> 1] = counts.get(l >> 1, 0) + 1
    if not counts:
        return None
    return max(counts, key=counts.get)


def is_tautology(cover: Cover) -> bool:
    """Unate-recursive tautology check."""
    if any(not cube for cube in cover):
        return True
    if not cover:
        return False
    # Unate shortcut: a unate cover is a tautology iff it has the
    # tautology cube (already checked above).
    pos_vars: Set[int] = set()
    neg_vars: Set[int] = set()
    for cube in cover:
        for l in cube:
            (neg_vars if l & 1 else pos_vars).add(l >> 1)
    binate = pos_vars & neg_vars
    if not binate:
        return False
    v = max(sorted(binate), key=lambda u: sum(1 for c in cover if lit(u) in c or lit(u, False) in c))
    return (is_tautology(cover_cofactor(cover, lit(v, True)))
            and is_tautology(cover_cofactor(cover, lit(v, False))))


def cover_contains_cube(cover: Cover, cube: Cube) -> bool:
    """True iff every minterm of ``cube`` is covered by ``cover``."""
    return is_tautology(cover_cofactor_cube(cover, cube))


class ComplementTooLarge(Exception):
    """Raised when a bounded complement exceeds its cube budget."""


def complement(cover: Cover, variables: Optional[Iterable[int]] = None,
               limit: Optional[int] = None) -> Cover:
    """Complement of a cover (unate recursive / Shannon).

    ``variables`` bounds the universe; defaults to the cover's support.
    ``limit`` bounds the result size in cubes: exceeded -> raises
    :class:`ComplementTooLarge` (the guard ``script.rugged`` effectively
    gets from espresso's ``nocomp`` mode).
    """
    budget = [limit] if limit is not None else None
    return _complement(cover, budget)


def _complement(cover: Cover, budget) -> Cover:
    if any(not cube for cube in cover):
        return []
    if not cover:
        return [TAUTOLOGY_CUBE]
    if len(cover) == 1:
        # De Morgan on a single cube.
        return [frozenset([l ^ 1]) for l in cover[0]]
    v = _most_binate_var(cover)
    assert v is not None
    p = _complement(cover_cofactor(cover, lit(v, True)), budget)
    n = _complement(cover_cofactor(cover, lit(v, False)), budget)
    out: Cover = []
    for cube in p:
        out.append(cube | {lit(v, True)})
    for cube in n:
        out.append(cube | {lit(v, False)})
    if budget is not None:
        budget[0] -= len(out)
        if budget[0] < 0:
            raise ComplementTooLarge()
    return remove_contained(out)


def cover_or(a: Cover, b: Cover) -> Cover:
    return remove_contained(list(a) + list(b))


def cover_and(a: Cover, b: Cover) -> Cover:
    out: Cover = []
    for ca in a:
        for cb in b:
            c = cube_and(ca, cb)
            if c is not None:
                out.append(c)
    return remove_contained(out)


def cover_equal(a: Cover, b: Cover) -> bool:
    """Semantic equality of two covers (containment both ways)."""
    return (all(cover_contains_cube(b, c) for c in a)
            and all(cover_contains_cube(a, c) for c in b))
