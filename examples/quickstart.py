"""Quickstart: optimize a small circuit with BDS and inspect the result.

Run:  python examples/quickstart.py
"""

from repro.bds import bds_optimize
from repro.mapping import map_network
from repro.network import Network, parse_blif, write_blif
from repro.verify import check_equivalence


def main():
    # A full adder described in BLIF (the format BDS and SIS both speak).
    blif = """
.model full_adder
.inputs a b cin
.outputs sum cout
.names a b t
10 1
01 1
.names t cin sum
10 1
01 1
.names a b g
11 1
.names t cin p
11 1
.names g p cout
1- 1
-1 1
.end
"""
    net = parse_blif(blif)
    print("input:", net.stats())

    # Run the complete BDS flow: sweep -> eliminate -> reorder ->
    # BDD decomposition -> sharing extraction.
    result = bds_optimize(net)
    print("after BDS:", result.network.stats())
    print("decompositions used:", result.decomp_stats.as_dict())

    # Prove the result equivalent (the paper's -verify).
    check = check_equivalence(net, result.network)
    print("equivalent:", check.equivalent)

    # Map onto the embedded mcnc-style library.
    mapped = map_network(result.network)
    print("mapped:", mapped.summary())
    print("cells:", dict(sorted(mapped.cell_histogram.items())))

    # The optimized netlist, back in BLIF.
    print("\n" + write_blif(result.network))


if __name__ == "__main__":
    main()
