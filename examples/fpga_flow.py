"""FPGA synthesis with BDS (the paper's Section VI item 4 / BDS-pga seed).

Optimizes a circuit with BDS and with the SIS-style baseline, then maps
both onto K-input LUTs and compares LUT counts -- the experiment behind
the paper's "over 30% improvement in the LUT count" remark.

Run:  python examples/fpga_flow.py [circuit] [K]
"""

import sys

from repro.bds import BDSOptions, bds_optimize
from repro.circuits import build_circuit
from repro.mapping import map_luts
from repro.sis import script_rugged
from repro.verify import simulate_equivalence


def main(circuit: str = "C1908", k: int = 5):
    net = build_circuit(circuit)
    print("%s: %s, K=%d LUTs" % (circuit, net.stats(), k))
    for label, flow in (
        ("BDS", lambda: bds_optimize(net, BDSOptions(balance_trees=True)).network),
        ("SIS", lambda: script_rugged(net).network),
    ):
        optimized = flow()
        mapped = map_luts(optimized, k=k)
        ok, _ = simulate_equivalence(net, mapped.network)
        print("  %s -> %s verified=%s" % (label, mapped.summary(), ok))


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "C1908",
         int(sys.argv[2]) if len(sys.argv) > 2 else 5)
