"""Compare BDS and the SIS-style algebraic flow on any registered circuit.

This is Fig. 12 as a script: the same input network goes down both
synthesis flows; the table prints literals/gates/area/delay/CPU for each.

Run:  python examples/compare_flows.py [circuit ...]
      python examples/compare_flows.py C1355 bshift32 pair
"""

import sys
import time

from repro.bds import bds_optimize
from repro.circuits import build_circuit
from repro.mapping import map_network
from repro.sis import script_rugged
from repro.verify import simulate_equivalence

DEFAULT = ["C1355", "C880", "bshift16", "m4x4", "pair"]


def run(name: str) -> None:
    net = build_circuit(name)
    row = {"circuit": name, "nodes": net.node_count()}
    for label, flow in (("bds", lambda: bds_optimize(net).network),
                        ("sis", lambda: script_rugged(net).network)):
        t0 = time.perf_counter()
        optimized = flow()
        cpu = time.perf_counter() - t0
        mapped = map_network(optimized)
        ok, _ = simulate_equivalence(net, mapped.network)
        assert ok, "%s/%s failed verification" % (name, label)
        row[label] = (optimized.literal_count(), mapped.gate_count,
                      mapped.area, mapped.delay, cpu)
    b, s = row["bds"], row["sis"]
    print("%-10s (%3d nodes)" % (name, row["nodes"]))
    print("   %-4s lits=%5d gates=%4d area=%8.0f delay=%6.2f cpu=%6.2fs"
          % (("BDS",) + b))
    print("   %-4s lits=%5d gates=%4d area=%8.0f delay=%6.2f cpu=%6.2fs"
          % (("SIS",) + s))
    print("   speedup %.1fx, area ratio %.2f"
          % (s[4] / max(b[4], 1e-9), b[2] / s[2]))


if __name__ == "__main__":
    names = sys.argv[1:] or DEFAULT
    for name in names:
        run(name)
