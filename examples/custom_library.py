"""Map onto a custom gate library.

Shows the genlib-style cell model: each cell is (area, delay, NAND/INV
pattern, cube cover).  Here we build a tiny NAND2+INV-only library --
the worst case for XOR preservation, demonstrating the effect the paper
blames for its area overhead ("only a small fraction of XORs ... are
actually mapped to XOR gates; this is a known weakness of the tree-based
technology mapper").

Run:  python examples/custom_library.py
"""

from repro.bds import bds_optimize
from repro.circuits import parity_tree
from repro.mapping import Cell, Library, map_network, mcnc_library
from repro.sop.cube import lit
from repro.verify import simulate_equivalence


def nand_inv_library() -> Library:
    inv = Cell("inv1", 464.0, 1.0, ("inv", "a"), ["a"],
               [frozenset({lit(0, False)})])
    nand2 = Cell("nand2", 928.0, 1.2, ("nand", "a", "b"), ["a", "b"],
                 [frozenset({lit(0, False)}), frozenset({lit(1, False)})])
    return Library([inv, nand2])


def main():
    net = parity_tree(8)
    optimized = bds_optimize(net).network

    rich = map_network(optimized, mcnc_library())
    poor = map_network(optimized, nand_inv_library())
    for label, mapped in (("mcnc-style", rich), ("nand2+inv only", poor)):
        ok, _ = simulate_equivalence(net, mapped.network)
        xors = sum(n for c, n in mapped.cell_histogram.items()
                   if c.startswith(("xor", "xnor")))
        print("%-16s %s  xor-cells=%d verified=%s"
              % (label, mapped.summary(), xors, ok))
    print("\nwith XOR cells the parity tree costs %.0f area; without, %.0f"
          % (rich.area, poor.area))


if __name__ == "__main__":
    main()
