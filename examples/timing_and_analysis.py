"""Analysis APIs: static timing, cone extraction, MFFCs, serialization.

Synthesizes a carry-lookahead adder, maps it, and then exercises the
analysis layer a downstream user would reach for: the critical path and
slacks, the logic cone of the slowest output, its MFFC, and saving the
output's BDD to disk format.

Run:  python examples/timing_and_analysis.py
"""

from repro.bdd import BDD
from repro.bdd.serialize import dumps, loads
from repro.bds import bds_optimize
from repro.circuits.extra import carry_lookahead_adder
from repro.mapping import analyze_timing, format_timing, map_network
from repro.network.cones import extract_cone, mffc, transitive_fanin
from repro.verify import check_equivalence


def main():
    net = carry_lookahead_adder(8)
    optimized = bds_optimize(net).network
    mapped = map_network(optimized, mode="delay")
    assert check_equivalence(net, mapped.network).equivalent

    report = analyze_timing(mapped)
    print(format_timing(report))

    worst = report.worst_output()
    print("\ncone of %s: %d signals"
          % (worst, len(transitive_fanin(mapped.network, worst))))
    print("MFFC of %s: %d private nodes"
          % (worst, len(mffc(mapped.network, worst))))

    cone = extract_cone(mapped.network, [worst], name="worst_cone")
    print("standalone cone:", cone.stats())

    # Serialize the cone output's global BDD and read it back.
    from repro.verify.cec import _global_bdd, _initial_order
    mgr = BDD()
    var_of = {n: mgr.new_var(n) for n in _initial_order(cone)}
    ref = _global_bdd(mgr, cone, worst, var_of, {}, size_cap=100000)
    text = dumps(mgr, [ref])
    mgr2, (back,) = loads(text)
    print("BDD dump: %d lines, reload %s"
          % (len(text.splitlines()),
             "ok" if len(text.splitlines()) > 3 and back is not None else "??"))


if __name__ == "__main__":
    main()
