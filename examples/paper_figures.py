"""Walk through the paper's worked examples (Figures 2-11) interactively.

Each section builds the figure's function, runs the decomposition the
figure illustrates, and prints the recovered formula next to the paper's.

Run:  python examples/paper_figures.py
"""

from repro.bdd import BDD, to_dot
from repro.bdd.traverse import node_count
from repro.decomp import decompose
from repro.decomp.dominators import find_simple_decompositions
from repro.decomp.generalized import conjunctive_candidates
from repro.decomp.xordec import boolean_xnor_candidates


def show(title, paper, ours):
    print("=" * 72)
    print(title)
    print("  paper:", paper)
    print("  ours :", ours)


def fig2_karplus():
    mgr = BDD()
    a, b, c, d = (mgr.new_var(n) for n in "abcd")
    f = mgr.and_(mgr.or_(mgr.var_ref(a), mgr.var_ref(b)),
                 mgr.or_(mgr.var_ref(c), mgr.var_ref(d)))
    tree = decompose(mgr, f)
    show("Fig. 2 -- Karplus 1-dominator (algebraic AND)",
         "(a+b)(c+d)", tree.to_expr(mgr.var_name))


def fig3_conjunctive():
    mgr = BDD()
    e, d, b = (mgr.new_var(n) for n in "edb")
    f = mgr.or_(mgr.var_ref(e) ^ 1,
                mgr.and_(mgr.var_ref(b) ^ 1, mgr.var_ref(d)))
    cands = conjunctive_candidates(mgr, f)
    best = min(cands, key=lambda c: node_count(mgr, c.divisor)
               + node_count(mgr, c.quotient))
    d_tree = decompose(mgr, best.divisor)
    q_tree = decompose(mgr, best.quotient)
    show("Fig. 3 / Example 2 -- conjunctive Boolean decomposition",
         "F = ~e + ~b d = (~e + d)(~e + ~b)",
         "(%s) & (%s)" % (d_tree.to_expr(mgr.var_name),
                          q_tree.to_expr(mgr.var_name)))


def fig4_and4():
    mgr = BDD()
    a, f_, b, c, g_, d, e = (mgr.new_var(n) for n in "afbcgde")
    ra = mgr.var_ref(a)
    d1 = mgr.or_many([mgr.and_(ra ^ 1, mgr.var_ref(f_)),
                      mgr.var_ref(b) ^ 1, mgr.var_ref(c)])
    d2 = mgr.or_many([mgr.and_(ra ^ 1, mgr.var_ref(g_)),
                      mgr.var_ref(d), mgr.var_ref(e)])
    func = mgr.and_(d1, d2)
    tree = decompose(mgr, func)
    show("Fig. 4 / Example 3 -- and4.blif, best known form (8 literals)",
         "(~a f + ~b + c)(~a g + d + e)",
         "%s   [%d literals]" % (tree.to_expr(mgr.var_name),
                                 tree.literal_count()))


def fig8_xdominator():
    mgr = BDD()
    u, v, q, x, y = (mgr.new_var(n) for n in "uvqxy")
    g = mgr.or_(mgr.var_ref(x), mgr.var_ref(y))
    h = mgr.or_many([mgr.var_ref(u) ^ 1, mgr.var_ref(v) ^ 1,
                     mgr.var_ref(q) ^ 1])
    f = mgr.xnor_(g, h)
    tree = decompose(mgr, f)
    show("Fig. 8 -- algebraic XNOR via x-dominator",
         "F = (x+y) xnor (~u + ~v + ~q)", tree.to_expr(mgr.var_name))


def fig9_rnd4():
    mgr = BDD()
    x1, x2, x4, x5 = (mgr.new_var(n) for n in ("x1", "x2", "x4", "x5"))
    g = mgr.xnor_(mgr.var_ref(x1), mgr.var_ref(x4) ^ 1)
    h = mgr.and_(mgr.var_ref(x2),
                 mgr.or_(mgr.var_ref(x5),
                         mgr.and_(mgr.var_ref(x1), mgr.var_ref(x4))))
    f = mgr.xnor_(g, h)
    cands = boolean_xnor_candidates(mgr, f)
    tree = decompose(mgr, f)
    show("Fig. 9 / Example 6 -- Boolean XNOR via generalized x-dominator",
         "F = (x1 xnor ~x4) xnor (x2 (x5 + x1 x4))",
         "%s   [%d candidates seeded]" % (tree.to_expr(mgr.var_name),
                                          len(cands)))


def fig11_mux():
    mgr = BDD()
    x, w, z, y = (mgr.new_var(n) for n in "xwzy")
    g = mgr.xnor_(mgr.var_ref(x), mgr.var_ref(w))
    f = mgr.ite(g, mgr.var_ref(z), mgr.var_ref(y))
    tree = decompose(mgr, f)
    show("Fig. 11 / Example 7 -- functional MUX decomposition",
         "F = g z + ~g y with g = x xnor w", tree.to_expr(mgr.var_name))
    # Bonus: the BDD rendered as Graphviz DOT (paste into dot -Tpng).
    print("\nDOT of the BDD (dotted edges = complemented):")
    print(to_dot(mgr, [f], ["F"]))


if __name__ == "__main__":
    fig2_karplus()
    fig3_conjunctive()
    fig4_and4()
    fig8_xdominator()
    fig9_rnd4()
    fig11_mux()
