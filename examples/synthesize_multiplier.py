"""Synthesize an arithmetic circuit end to end (the Table II scenario).

Builds an NxN array multiplier, optimizes it with BDS, maps it onto the
gate library and verifies the mapped netlist -- then does the same with
the SIS-style baseline for comparison.

Run:  python examples/synthesize_multiplier.py [bits]
"""

import sys
import time

from repro.circuits import array_multiplier
from repro.bds import bds_optimize
from repro.mapping import map_network
from repro.sis import script_rugged
from repro.verify import simulate_equivalence


def main(bits: int = 6):
    net = array_multiplier(bits)
    print("m%dx%d:" % (bits, bits), net.stats())

    for label, flow in (("BDS", lambda: bds_optimize(net).network),
                        ("SIS", lambda: script_rugged(net).network)):
        t0 = time.perf_counter()
        optimized = flow()
        cpu = time.perf_counter() - t0
        mapped = map_network(optimized)
        ok, cex = simulate_equivalence(net, mapped.network)
        print("%s: cpu=%.2fs literals=%d -> %s verified=%s"
              % (label, cpu, optimized.literal_count(), mapped.summary(), ok))
        xor_cells = sum(n for c, n in mapped.cell_histogram.items()
                        if c.startswith(("xor", "xnor")))
        print("    XOR/XNOR cells preserved: %d" % xor_cells)
        if not ok:
            raise SystemExit("verification failed at %r" % (cex,))


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 6)
